#include "video/synthetic.h"

#include <gtest/gtest.h>

#include "video/codec.h"
#include "video/partial_decoder.h"

namespace vcd::video {
namespace {

TEST(RenderVideoTest, FrameCountAndDims) {
  SceneModel m = SceneModel::Generate(3, 5.0);
  RenderOptions ro;
  ro.width = 32;
  ro.height = 32;
  ro.fps = 10.0;
  auto v = RenderVideo(m, 0.0, 1.0, ro);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->frames.size(), 10u);
  EXPECT_EQ(v->frames[0].width(), 32);
  EXPECT_EQ(v->fps, 10.0);
}

TEST(RenderVideoTest, RejectsBadOptions) {
  SceneModel m = SceneModel::Generate(3, 5.0);
  RenderOptions ro;
  ro.width = 31;  // odd
  EXPECT_FALSE(RenderVideo(m, 0, 1, ro).ok());
  ro.width = 32;
  ro.fps = 0;
  EXPECT_FALSE(RenderVideo(m, 0, 1, ro).ok());
}

TEST(RenderVideoTest, SameModelSameOutput) {
  SceneModel m = SceneModel::Generate(5, 5.0);
  RenderOptions ro;
  ro.width = 32;
  ro.height = 32;
  ro.fps = 5.0;
  auto a = RenderVideo(m, 0.0, 1.0, ro);
  auto b = RenderVideo(m, 0.0, 1.0, ro);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->frames[2] == b->frames[2]);
}

TEST(RenderVideoTest, NoiseChangesPixelsButNotStructure) {
  SceneModel m = SceneModel::Generate(5, 5.0);
  RenderOptions clean;
  clean.width = 32;
  clean.height = 32;
  clean.fps = 5.0;
  RenderOptions noisy = clean;
  noisy.noise_sigma = 3.0;
  auto a = RenderVideo(m, 0.0, 0.4, clean);
  auto b = RenderVideo(m, 0.0, 0.4, noisy);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(a->frames[0] == b->frames[0]);
  // Mean absolute deviation should be about sigma*sqrt(2/pi) ≈ 2.4.
  double mad = 0;
  for (size_t i = 0; i < a->frames[0].y_plane().size(); ++i) {
    mad += std::abs(static_cast<int>(a->frames[0].y_plane()[i]) -
                    static_cast<int>(b->frames[0].y_plane()[i]));
  }
  mad /= static_cast<double>(a->frames[0].y_plane().size());
  EXPECT_GT(mad, 0.5);
  EXPECT_LT(mad, 6.0);
}

TEST(RenderDcFramesTest, OnePerGop) {
  SceneModel m = SceneModel::Generate(7, 10.0);
  RenderOptions ro;
  ro.width = 64;
  ro.height = 48;
  ro.fps = 10.0;
  auto dcs = RenderDcFrames(m, 0.0, 2.0, ro, 5);
  ASSERT_TRUE(dcs.ok());
  EXPECT_EQ(dcs->size(), 4u);  // frames 0,5,10,15
  EXPECT_EQ((*dcs)[1].frame_index, 5);
  EXPECT_NEAR((*dcs)[1].timestamp, 0.5, 1e-9);
}

TEST(RenderDcFramesTest, MatchesPixelPathThroughCodec) {
  // The DC fast path must approximate the real pipeline: render pixels,
  // encode, partially decode, and compare the DC maps block by block.
  SceneModel m = SceneModel::Generate(11, 10.0);
  RenderOptions ro;
  ro.width = 64;
  ro.height = 48;
  ro.fps = 10.0;
  const int gop = 5;
  auto fast = RenderDcFrames(m, 0.0, 2.0, ro, gop);
  ASSERT_TRUE(fast.ok());

  auto pixels = RenderVideo(m, 0.0, 2.0, ro);
  ASSERT_TRUE(pixels.ok());
  CodecParams p;
  p.width = 64;
  p.height = 48;
  p.fps = 10.0;
  p.gop_size = gop;
  p.quantizer = 2;
  auto bytes = Encoder::EncodeVideo(*pixels, p);
  ASSERT_TRUE(bytes.ok());
  auto real = PartialDecoder::ExtractAll(*bytes);
  ASSERT_TRUE(real.ok());

  ASSERT_EQ(fast->size(), real->size());
  double total_err = 0;
  int n = 0;
  for (size_t f = 0; f < fast->size(); ++f) {
    ASSERT_EQ((*fast)[f].dc.size(), (*real)[f].dc.size());
    for (size_t b = 0; b < (*fast)[f].dc.size(); ++b) {
      total_err +=
          std::abs((*fast)[f].BlockMean(static_cast<int>(b % 8), static_cast<int>(b / 8)) -
                   (*real)[f].BlockMean(static_cast<int>(b % 8), static_cast<int>(b / 8)));
      ++n;
    }
  }
  // Block means agree to a few luma levels on average (2×2 sampling vs the
  // true 64-pixel mean plus quantization).
  EXPECT_LT(total_err / n, 4.0);
}

TEST(RenderDcFramesTest, RejectsBadOptions) {
  SceneModel m = SceneModel::Generate(1, 2.0);
  RenderOptions ro;
  ro.width = -1;
  EXPECT_FALSE(RenderDcFrames(m, 0, 1, ro, 5).ok());
  ro.width = 64;
  ro.height = 48;
  EXPECT_FALSE(RenderDcFrames(m, 0, 1, ro, 0).ok());
}

TEST(RenderVideoTest, TimeOffsetShiftsContent) {
  SceneModel m = SceneModel::Generate(13, 20.0);
  RenderOptions ro;
  ro.width = 32;
  ro.height = 32;
  ro.fps = 5.0;
  auto a = RenderVideo(m, 0.0, 0.4, ro);
  auto b = RenderVideo(m, 10.0, 0.4, ro);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(a->frames[0] == b->frames[0]);
}

}  // namespace
}  // namespace vcd::video
