/// \file decoder_corruption_test.cc
/// Corruption robustness of the partial decoder: seeded random byte flips
/// and truncations of valid VCDS bit streams must never crash, never report
/// kInternal (malformed *input* is kCorruption), and in resync mode must
/// always terminate with a bounded amount of recovered output.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"
#include "video/codec.h"
#include "video/partial_decoder.h"
#include "video/scene_model.h"
#include "video/synthetic.h"

namespace vcd::video {
namespace {

std::vector<uint8_t> EncodeTestClip(int frames, int gop) {
  SceneModel model = SceneModel::Generate(21, 10.0);
  RenderOptions ro;
  ro.width = 64;
  ro.height = 48;
  ro.fps = 10.0;
  auto clip = RenderVideo(model, 0.0, frames / ro.fps, ro);
  VCD_CHECK(clip.ok(), "render failed");
  CodecParams p;
  p.width = 64;
  p.height = 48;
  p.fps = 10.0;
  p.gop_size = gop;
  p.quantizer = 3;
  auto bytes = Encoder::EncodeVideo(*clip, p);
  VCD_CHECK(bytes.ok(), "encode failed");
  return std::move(bytes).value();
}

/// Byte offsets of every frame record (marker byte) in a *valid* stream.
std::vector<size_t> FrameOffsets(const std::vector<uint8_t>& bytes) {
  std::vector<size_t> offs;
  size_t pos = StreamHeaderSize();
  while (pos + 5 <= bytes.size()) {
    offs.push_back(pos);
    const uint32_t len = (static_cast<uint32_t>(bytes[pos + 1]) << 24) |
                         (static_cast<uint32_t>(bytes[pos + 2]) << 16) |
                         (static_cast<uint32_t>(bytes[pos + 3]) << 8) |
                         bytes[pos + 4];
    pos += 5 + len;
  }
  return offs;
}

/// Drives \p pd to completion with a hard iteration bound; every status must
/// be OK, NotFound or kCorruption — a malformed *input* must never surface
/// as kInternal (that code is reserved for our own invariant violations).
/// Returns the number of frames emitted, degraded ones included.
int DrainDecoder(PartialDecoder* pd, bool expect_strict_stops) {
  int emitted = 0;
  DcFrame f;
  for (int iter = 0; iter < 10000; ++iter) {
    const Status st = pd->NextKeyFrame(&f);
    if (st.ok()) {
      ++emitted;
      continue;
    }
    if (st.code() == StatusCode::kNotFound) return emitted;  // end of stream
    EXPECT_EQ(st.code(), StatusCode::kCorruption) << st.ToString();
    if (expect_strict_stops) return emitted;
    // Resync mode must never return kCorruption: it recovers or ends.
    ADD_FAILURE() << "resync mode surfaced an error: " << st.ToString();
    return emitted;
  }
  ADD_FAILURE() << "decoder did not terminate within 10000 iterations";
  return emitted;
}

TEST(DecoderCorruptionTest, SeededByteFlipsStrictNeverInternal) {
  const std::vector<uint8_t> clean = EncodeTestClip(12, 4);
  for (uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed);
    std::vector<uint8_t> bytes = clean;
    const int flips = 1 + static_cast<int>(rng.Uniform(8));
    for (int i = 0; i < flips; ++i) {
      // Flip payload bytes only; header damage is Open's concern.
      const size_t off = StreamHeaderSize() +
                         rng.Uniform(bytes.size() - StreamHeaderSize());
      bytes[off] ^= static_cast<uint8_t>(1 + rng.Uniform(255));
    }
    PartialDecoder pd;
    ASSERT_TRUE(pd.Open(bytes.data(), bytes.size()).ok());
    DrainDecoder(&pd, /*expect_strict_stops=*/true);
  }
}

TEST(DecoderCorruptionTest, SeededByteFlipsResyncAlwaysTerminates) {
  const std::vector<uint8_t> clean = EncodeTestClip(12, 4);
  for (uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed + 1000);
    std::vector<uint8_t> bytes = clean;
    const int flips = 1 + static_cast<int>(rng.Uniform(8));
    for (int i = 0; i < flips; ++i) {
      const size_t off = StreamHeaderSize() +
                         rng.Uniform(bytes.size() - StreamHeaderSize());
      bytes[off] ^= static_cast<uint8_t>(1 + rng.Uniform(255));
    }
    PartialDecoder pd;
    pd.set_resync_on_corruption(true);
    ASSERT_TRUE(pd.Open(bytes.data(), bytes.size()).ok());
    const int emitted = DrainDecoder(&pd, /*expect_strict_stops=*/false);
    const auto& st = pd.stats();
    EXPECT_EQ(st.key_frames, emitted);
    EXPECT_LE(st.degraded_frames, st.key_frames);
    EXPECT_LE(st.bytes_skipped, static_cast<int64_t>(bytes.size()));
  }
}

TEST(DecoderCorruptionTest, SeededTruncationsNeverCrash) {
  const std::vector<uint8_t> clean = EncodeTestClip(12, 4);
  for (uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed + 2000);
    std::vector<uint8_t> bytes = clean;
    bytes.resize(rng.Uniform(bytes.size() + 1));
    for (const bool resync : {false, true}) {
      PartialDecoder pd;
      pd.set_resync_on_corruption(resync);
      const Status open = pd.Open(bytes.data(), bytes.size());
      if (!open.ok()) {
        EXPECT_NE(open.code(), StatusCode::kInternal) << open.ToString();
        continue;
      }
      DrainDecoder(&pd, /*expect_strict_stops=*/!resync);
    }
  }
}

TEST(DecoderCorruptionTest, MidPayloadDamageEmitsDegradedFrame) {
  std::vector<uint8_t> bytes = EncodeTestClip(12, 4);
  const std::vector<size_t> offs = FrameOffsets(bytes);
  ASSERT_GE(offs.size(), 2u);
  // Zero out the back half of the first I-frame's payload: the entropy
  // decoder hits an over-long Exp-Golomb run and fails mid-frame.
  const size_t payload = offs[0] + 5;
  const size_t payload_len = offs[1] - payload;
  for (size_t i = payload + payload_len / 8; i < offs[1]; ++i) bytes[i] = 0;

  // Strict mode rejects the frame with kCorruption.
  {
    PartialDecoder pd;
    ASSERT_TRUE(pd.Open(bytes.data(), bytes.size()).ok());
    DcFrame f;
    EXPECT_EQ(pd.NextKeyFrame(&f).code(), StatusCode::kCorruption);
  }
  // Resync mode keeps the decoded DC prefix, flags the frame, and carries
  // on with the rest of the stream undisturbed.
  {
    PartialDecoder pd;
    pd.set_resync_on_corruption(true);
    ASSERT_TRUE(pd.Open(bytes.data(), bytes.size()).ok());
    DcFrame f;
    ASSERT_TRUE(pd.NextKeyFrame(&f).ok());
    EXPECT_TRUE(f.degraded);
    int clean_after = 0;
    while (pd.NextKeyFrame(&f).ok()) {
      EXPECT_FALSE(f.degraded);
      ++clean_after;
    }
    EXPECT_EQ(clean_after, 2);  // key frames 4 and 8 of the 12-frame GOP-4 clip
    EXPECT_EQ(pd.stats().degraded_frames, 1);
    EXPECT_EQ(pd.stats().key_frames, 3);
  }
}

TEST(DecoderCorruptionTest, ResyncSkipsClobberedFrameBoundary) {
  std::vector<uint8_t> bytes = EncodeTestClip(12, 4);
  const std::vector<size_t> offs = FrameOffsets(bytes);
  ASSERT_GE(offs.size(), 3u);
  bytes[offs[1]] = 0x00;  // destroy the second frame's marker (a P-frame)

  PartialDecoder pd;
  pd.set_resync_on_corruption(true);
  ASSERT_TRUE(pd.Open(bytes.data(), bytes.size()).ok());
  int emitted = 0;
  DcFrame f;
  while (pd.NextKeyFrame(&f).ok()) ++emitted;
  // The clobbered record is skipped; every real key frame still comes out.
  EXPECT_EQ(emitted, 3);
  EXPECT_GE(pd.stats().resync_scans, 1);
  EXPECT_GT(pd.stats().bytes_skipped, 0);
}

}  // namespace
}  // namespace vcd::video
