/// \file robustness_test.cc
/// Adversarial-input robustness: decoders must fail with a Status — never
/// crash, hang, or over-read — on arbitrary garbage and on bit-flipped
/// valid streams.

#include <gtest/gtest.h>

#include "util/logging.h"
#include "util/rng.h"
#include "video/codec.h"
#include "video/partial_decoder.h"
#include "video/scene_model.h"
#include "video/synthetic.h"
#include "video/y4m.h"

namespace vcd::video {
namespace {

std::vector<uint8_t> ValidStream() {
  SceneModel model = SceneModel::Generate(3, 5.0);
  RenderOptions ro;
  ro.width = 48;
  ro.height = 32;
  ro.fps = 10.0;
  auto clip = RenderVideo(model, 0.0, 1.0, ro);
  VCD_CHECK(clip.ok(), "render");
  CodecParams p;
  p.width = 48;
  p.height = 32;
  p.fps = 10.0;
  p.gop_size = 4;
  auto bytes = Encoder::EncodeVideo(*clip, p);
  VCD_CHECK(bytes.ok(), "encode");
  return std::move(bytes).value();
}

/// Runs the full decoder until it stops, returning the last status.
Status DrainDecoder(const std::vector<uint8_t>& bytes) {
  Decoder dec;
  Status st = dec.Open(bytes.data(), bytes.size());
  if (!st.ok()) return st;
  Frame f;
  for (int guard = 0; guard < 1000; ++guard) {
    st = dec.NextFrame(&f);
    if (!st.ok()) return st;
  }
  return Status::Internal("decoder never terminated");
}

Status DrainPartial(const std::vector<uint8_t>& bytes) {
  PartialDecoder pd;
  Status st = pd.Open(bytes.data(), bytes.size());
  if (!st.ok()) return st;
  DcFrame f;
  for (int guard = 0; guard < 1000; ++guard) {
    st = pd.NextKeyFrame(&f);
    if (!st.ok()) return st;
  }
  return Status::Internal("partial decoder never terminated");
}

TEST(RobustnessTest, DecoderSurvivesRandomGarbage) {
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> junk(rng.Uniform(2000));
    for (auto& b : junk) b = static_cast<uint8_t>(rng.Next());
    Status st = DrainDecoder(junk);
    EXPECT_FALSE(st.ok());
    EXPECT_NE(st.code(), StatusCode::kInternal) << "decoder did not terminate";
  }
}

TEST(RobustnessTest, DecoderSurvivesBitFlips) {
  const std::vector<uint8_t> good = ValidStream();
  Rng rng(2);
  int decodable = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<uint8_t> bytes = good;
    // Flip 1-4 random bits.
    const int flips = 1 + static_cast<int>(rng.Uniform(4));
    for (int i = 0; i < flips; ++i) {
      bytes[rng.Uniform(bytes.size())] ^= static_cast<uint8_t>(1 << rng.Uniform(8));
    }
    Status st = DrainDecoder(bytes);
    EXPECT_NE(st.code(), StatusCode::kInternal) << "decoder did not terminate";
    decodable += (st.code() == StatusCode::kNotFound);  // clean end of stream
  }
  // Some flips land in payload values and still decode cleanly (to wrong
  // pixels) — both outcomes are acceptable; crashes are not.
  SUCCEED() << decodable << " streams still fully decoded";
}

TEST(RobustnessTest, PartialDecoderSurvivesBitFlips) {
  const std::vector<uint8_t> good = ValidStream();
  Rng rng(3);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<uint8_t> bytes = good;
    const int flips = 1 + static_cast<int>(rng.Uniform(4));
    for (int i = 0; i < flips; ++i) {
      bytes[rng.Uniform(bytes.size())] ^= static_cast<uint8_t>(1 << rng.Uniform(8));
    }
    Status st = DrainPartial(bytes);
    EXPECT_NE(st.code(), StatusCode::kInternal);
  }
}

TEST(RobustnessTest, DecoderSurvivesTruncationAtEveryPrefix) {
  const std::vector<uint8_t> good = ValidStream();
  // Step through prefixes (sparsely for speed).
  for (size_t n = 0; n < good.size(); n += 97) {
    std::vector<uint8_t> cut(good.begin(), good.begin() + static_cast<long>(n));
    Status st = DrainDecoder(cut);
    EXPECT_NE(st.code(), StatusCode::kInternal) << "prefix " << n;
    EXPECT_FALSE(st.ok());
  }
}

TEST(RobustnessTest, Y4mSurvivesRandomGarbage) {
  Rng rng(4);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<uint8_t> junk(rng.Uniform(500));
    for (auto& b : junk) b = static_cast<uint8_t>(rng.Next());
    EXPECT_FALSE(ReadY4m(junk.data(), junk.size()).ok());
  }
}

TEST(RobustnessTest, Y4mHeaderFuzz) {
  // Mutate a valid header byte by byte; the reader must never crash.
  SceneModel model = SceneModel::Generate(5, 3.0);
  RenderOptions ro;
  ro.width = 32;
  ro.height = 32;
  ro.fps = 10.0;
  auto clip = RenderVideo(model, 0.0, 0.3, ro);
  ASSERT_TRUE(clip.ok());
  auto bytes = WriteY4m(*clip).value();
  for (size_t i = 0; i < 40 && i < bytes.size(); ++i) {
    auto mut = bytes;
    mut[i] ^= 0x5a;
    (void)ReadY4m(mut.data(), mut.size());  // must not crash; status is free
  }
  SUCCEED();
}

}  // namespace
}  // namespace vcd::video
