#include "video/y4m.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "util/logging.h"
#include "video/scene_model.h"
#include "video/synthetic.h"

namespace vcd::video {
namespace {

VideoBuffer Clip(int frames = 5, double fps = 25.0, int w = 32, int h = 32) {
  SceneModel m = SceneModel::Generate(7, 5.0);
  RenderOptions ro;
  ro.width = w;
  ro.height = h;
  ro.fps = fps;
  auto v = RenderVideo(m, 0.0, frames / fps, ro);
  VCD_CHECK(v.ok(), "render");
  return std::move(v).value();
}

TEST(Y4mTest, RoundTripLossless) {
  VideoBuffer in = Clip();
  auto bytes = WriteY4m(in);
  ASSERT_TRUE(bytes.ok());
  auto out = ReadY4m(bytes->data(), bytes->size());
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->frames.size(), in.frames.size());
  EXPECT_DOUBLE_EQ(out->fps, in.fps);
  for (size_t i = 0; i < in.frames.size(); ++i) {
    EXPECT_TRUE(in.frames[i] == out->frames[i]) << "frame " << i;
  }
}

TEST(Y4mTest, HeaderContents) {
  VideoBuffer in = Clip(2, 25.0, 64, 48);
  auto bytes = WriteY4m(in);
  ASSERT_TRUE(bytes.ok());
  std::string head(bytes->begin(), bytes->begin() + 40);
  EXPECT_NE(head.find("YUV4MPEG2"), std::string::npos);
  EXPECT_NE(head.find("W64"), std::string::npos);
  EXPECT_NE(head.find("H48"), std::string::npos);
  EXPECT_NE(head.find("F25:1"), std::string::npos);
  EXPECT_NE(head.find("C420"), std::string::npos);
}

TEST(Y4mTest, NtscFpsRational) {
  VideoBuffer in = Clip(2, 29.97);
  auto bytes = WriteY4m(in);
  ASSERT_TRUE(bytes.ok());
  std::string head(bytes->begin(), bytes->begin() + 48);
  EXPECT_NE(head.find("F30000:1001"), std::string::npos);
  auto out = ReadY4m(bytes->data(), bytes->size());
  ASSERT_TRUE(out.ok());
  EXPECT_NEAR(out->fps, 29.97, 1e-2);
}

TEST(Y4mTest, WriteValidation) {
  VideoBuffer empty;
  empty.fps = 25.0;
  EXPECT_FALSE(WriteY4m(empty).ok());
  VideoBuffer badfps = Clip();
  badfps.fps = 0;
  EXPECT_FALSE(WriteY4m(badfps).ok());
}

TEST(Y4mTest, MixedDimensionsRejected) {
  VideoBuffer in = Clip();
  in.frames.push_back(Frame::Create(64, 64).value());
  EXPECT_FALSE(WriteY4m(in).ok());
}

TEST(Y4mTest, ReadRejectsGarbage) {
  const char* junk = "not a y4m stream at all\n";
  EXPECT_EQ(ReadY4m(reinterpret_cast<const uint8_t*>(junk), 24).status().code(),
            StatusCode::kCorruption);
  EXPECT_FALSE(ReadY4m(nullptr, 0).ok());
}

TEST(Y4mTest, ReadRejectsTruncatedFrame) {
  VideoBuffer in = Clip(2);
  auto bytes = WriteY4m(in);
  ASSERT_TRUE(bytes.ok());
  auto cut = std::vector<uint8_t>(bytes->begin(), bytes->end() - 100);
  EXPECT_EQ(ReadY4m(cut.data(), cut.size()).status().code(), StatusCode::kCorruption);
}

TEST(Y4mTest, ReadRejectsUnsupportedChroma) {
  std::string s = "YUV4MPEG2 W32 H32 F25:1 C444\nFRAME\n";
  EXPECT_EQ(ReadY4m(reinterpret_cast<const uint8_t*>(s.data()), s.size())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(Y4mTest, ReadToleratesExtraTags) {
  VideoBuffer in = Clip(1);
  auto bytes = WriteY4m(in);
  ASSERT_TRUE(bytes.ok());
  // Inject an X comment tag into the header line.
  std::string s(bytes->begin(), bytes->end());
  s.insert(s.find('\n'), " XCOMMENT=hi");
  auto out = ReadY4m(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->frames.size(), 1u);
}

TEST(Y4mTest, FileRoundTrip) {
  VideoBuffer in = Clip(3);
  const std::string path = "/tmp/vcd_y4m_test.y4m";
  ASSERT_TRUE(WriteY4mFile(in, path).ok());
  auto out = ReadY4mFile(path);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->frames.size(), 3u);
  EXPECT_TRUE(in.frames[2] == out->frames[2]);
  std::remove(path.c_str());
}

TEST(Y4mTest, MissingFileIsNotFound) {
  EXPECT_EQ(ReadY4mFile("/tmp/definitely_missing_vcd.y4m").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace vcd::video
