#include "video/shot_detector.h"

#include <gtest/gtest.h>

#include "util/logging.h"
#include "video/scene_model.h"
#include "video/synthetic.h"

namespace vcd::video {
namespace {

/// Builds a DC frame with uniform block mean \p level.
DcFrame Flat(double level, int64_t idx, double t) {
  DcFrame f;
  f.blocks_x = 8;
  f.blocks_y = 6;
  f.frame_index = idx;
  f.timestamp = t;
  f.dc.assign(48, static_cast<float>(8.0 * (level - 128.0)));
  return f;
}

TEST(ShotDetectorOptionsTest, Validation) {
  ShotDetectorOptions o;
  EXPECT_TRUE(o.Validate().ok());
  o.threshold = 0;
  EXPECT_FALSE(o.Validate().ok());
  o = ShotDetectorOptions();
  o.relative_factor = 0.5;
  EXPECT_FALSE(o.Validate().ok());
  o = ShotDetectorOptions();
  o.history = 0;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(ShotDetectorTest, FrameDifference) {
  DcFrame a = Flat(100, 0, 0), b = Flat(120, 1, 0.4);
  EXPECT_NEAR(ShotDetector::FrameDifference(a, b), 20.0, 1e-6);
  EXPECT_DOUBLE_EQ(ShotDetector::FrameDifference(a, a), 0.0);
}

TEST(ShotDetectorTest, DetectsHardCut) {
  auto det = ShotDetector::Create().value();
  int64_t i = 0;
  // Ten frames at level 80, then ten at level 180.
  for (; i < 10; ++i) EXPECT_FALSE(det.ProcessKeyFrame(Flat(80, i, i * 0.4)));
  EXPECT_TRUE(det.ProcessKeyFrame(Flat(180, i, i * 0.4)));
  ++i;
  for (; i < 20; ++i) EXPECT_FALSE(det.ProcessKeyFrame(Flat(180, i, i * 0.4)));
  det.Finish();
  ASSERT_EQ(det.shots().size(), 2u);
  EXPECT_EQ(det.shots()[0].begin_key_frame, 0);
  EXPECT_EQ(det.shots()[0].end_key_frame, 9);
  EXPECT_EQ(det.shots()[1].begin_key_frame, 10);
  EXPECT_EQ(det.shots()[1].end_key_frame, 19);
  EXPECT_NEAR(det.shots()[1].begin_time, 10 * 0.4, 1e-9);
}

TEST(ShotDetectorTest, GradualDriftIsNotACut) {
  auto det = ShotDetector::Create().value();
  for (int64_t i = 0; i < 40; ++i) {
    EXPECT_FALSE(det.ProcessKeyFrame(Flat(80 + i * 2.0, i, i * 0.4)))
        << "frame " << i;
  }
  det.Finish();
  EXPECT_EQ(det.shots().size(), 1u);
}

TEST(ShotDetectorTest, FinishClosesLastShot) {
  auto det = ShotDetector::Create().value();
  det.ProcessKeyFrame(Flat(90, 0, 0.0));
  det.ProcessKeyFrame(Flat(90, 1, 0.4));
  EXPECT_TRUE(det.shots().empty());
  det.Finish();
  ASSERT_EQ(det.shots().size(), 1u);
  EXPECT_EQ(det.shots()[0].end_key_frame, 1);
}

TEST(ShotDetectorTest, EmptyStream) {
  auto det = ShotDetector::Create().value();
  det.Finish();
  EXPECT_TRUE(det.shots().empty());
}

TEST(ShotDetectorTest, RecoversSceneModelCuts) {
  // End-to-end: render a shot-structured scene to DC frames and check the
  // detected cut times line up with the model's shot boundaries.
  SceneModel model = SceneModel::Generate(1234, 60.0);
  RenderOptions ro;
  ro.fps = 29.97;
  auto frames = RenderDcFrames(model, 0.0, 60.0, ro, 12);
  ASSERT_TRUE(frames.ok());
  auto det = ShotDetector::Create().value();
  for (const auto& f : *frames) det.ProcessKeyFrame(f);
  det.Finish();
  // The model has ~60/5 = 12 shots; DC-level cut detection should find a
  // comparable number (some adjacent shots may look alike).
  const size_t model_shots = model.shots().size();
  EXPECT_GT(det.shots().size(), model_shots / 3);
  EXPECT_LE(det.shots().size(), model_shots + 3);
  // Every detected boundary should be within one key-frame interval of a
  // true shot boundary.
  int aligned = 0;
  for (size_t s = 1; s < det.shots().size(); ++s) {
    const double t = det.shots()[s].begin_time;
    for (const vcd::video::Shot& ms : model.shots()) {
      if (std::abs(ms.start - t) < 0.9) {
        ++aligned;
        break;
      }
    }
  }
  if (det.shots().size() > 1) {
    EXPECT_GE(aligned, static_cast<int>(det.shots().size()) - 1 - 1);
  }
}

TEST(ShotDetectorTest, MismatchedGeometryIgnoredSafely) {
  auto det = ShotDetector::Create().value();
  det.ProcessKeyFrame(Flat(80, 0, 0.0));
  DcFrame other;
  other.blocks_x = 4;
  other.blocks_y = 4;
  other.dc.assign(16, 0.0f);
  other.frame_index = 1;
  other.timestamp = 0.4;
  EXPECT_FALSE(det.ProcessKeyFrame(other));
  det.Finish();
  EXPECT_EQ(det.shots().size(), 1u);
}

}  // namespace
}  // namespace vcd::video
