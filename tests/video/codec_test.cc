#include "video/codec.h"

#include <gtest/gtest.h>

#include "util/logging.h"

#include <cmath>

#include "video/scene_model.h"
#include "video/synthetic.h"

namespace vcd::video {
namespace {

/// Renders a short test clip of structured synthetic content.
VideoBuffer TestClip(int frames, int w = 64, int h = 48, uint64_t seed = 42) {
  SceneModel model = SceneModel::Generate(seed, 10.0);
  RenderOptions ro;
  ro.width = w;
  ro.height = h;
  ro.fps = 10.0;
  auto video = RenderVideo(model, 0.0, frames / ro.fps, ro);
  VCD_CHECK(video.ok(), "render failed");
  return std::move(video).value();
}

double Psnr(const Frame& a, const Frame& b) {
  double mse = 0;
  for (size_t i = 0; i < a.y_plane().size(); ++i) {
    double d = static_cast<double>(a.y_plane()[i]) - b.y_plane()[i];
    mse += d * d;
  }
  mse /= static_cast<double>(a.y_plane().size());
  if (mse == 0) return 99.0;
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

TEST(CodecParamsTest, Validation) {
  CodecParams p;
  EXPECT_TRUE(p.Validate().ok());
  p.width = 0;
  EXPECT_FALSE(p.Validate().ok());
  p = CodecParams();
  p.width = 63;
  EXPECT_FALSE(p.Validate().ok());
  p = CodecParams();
  p.quantizer = 0;
  EXPECT_FALSE(p.Validate().ok());
  p = CodecParams();
  p.quantizer = 32;
  EXPECT_FALSE(p.Validate().ok());
  p = CodecParams();
  p.gop_size = 0;
  EXPECT_FALSE(p.Validate().ok());
  p = CodecParams();
  p.fps = -1;
  EXPECT_FALSE(p.Validate().ok());
}

TEST(CodecTest, EncodeDecodeRoundTripQuality) {
  VideoBuffer clip = TestClip(12);
  CodecParams p;
  p.width = 64;
  p.height = 48;
  p.fps = 10.0;
  p.gop_size = 4;
  p.quantizer = 2;
  auto bytes = Encoder::EncodeVideo(clip, p);
  ASSERT_TRUE(bytes.ok());
  auto decoded = Decoder::DecodeVideo(*bytes);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->frames.size(), clip.frames.size());
  for (size_t i = 0; i < clip.frames.size(); ++i) {
    EXPECT_GT(Psnr(clip.frames[i], decoded->frames[i]), 35.0) << "frame " << i;
  }
}

TEST(CodecTest, CoarserQuantizerSmallerStream) {
  VideoBuffer clip = TestClip(8);
  CodecParams p;
  p.width = 64;
  p.height = 48;
  p.fps = 10.0;
  p.quantizer = 1;
  auto fine = Encoder::EncodeVideo(clip, p);
  p.quantizer = 16;
  auto coarse = Encoder::EncodeVideo(clip, p);
  ASSERT_TRUE(fine.ok());
  ASSERT_TRUE(coarse.ok());
  EXPECT_LT(coarse->size(), fine->size());
}

TEST(CodecTest, HeaderRoundTrip) {
  VideoBuffer clip = TestClip(2);
  CodecParams p;
  p.width = 64;
  p.height = 48;
  p.fps = 29.97;
  p.gop_size = 12;
  p.quantizer = 5;
  auto bytes = Encoder::EncodeVideo(clip, p);
  ASSERT_TRUE(bytes.ok());
  Decoder dec;
  ASSERT_TRUE(dec.Open(bytes->data(), bytes->size()).ok());
  EXPECT_EQ(dec.header().width, 64);
  EXPECT_EQ(dec.header().height, 48);
  EXPECT_NEAR(dec.header().fps, 29.97, 1e-3);
  EXPECT_EQ(dec.header().gop_size, 12);
  EXPECT_EQ(dec.header().quantizer, 5);
}

TEST(CodecTest, GopStructure) {
  VideoBuffer clip = TestClip(10);
  CodecParams p;
  p.width = 64;
  p.height = 48;
  p.fps = 10.0;
  p.gop_size = 4;
  auto bytes = Encoder::EncodeVideo(clip, p);
  ASSERT_TRUE(bytes.ok());
  // Walk the frame markers: frames 0, 4, 8 must be intra.
  size_t pos = StreamHeaderSize();
  int idx = 0;
  while (pos < bytes->size()) {
    uint8_t marker = (*bytes)[pos];
    const bool intra = marker == static_cast<uint8_t>(FrameType::kIntra);
    EXPECT_EQ(intra, idx % 4 == 0) << "frame " << idx;
    uint32_t len = (static_cast<uint32_t>((*bytes)[pos + 1]) << 24) |
                   (static_cast<uint32_t>((*bytes)[pos + 2]) << 16) |
                   (static_cast<uint32_t>((*bytes)[pos + 3]) << 8) | (*bytes)[pos + 4];
    pos += 5 + len;
    ++idx;
  }
  EXPECT_EQ(idx, 10);
}

TEST(CodecTest, DimensionMismatchRejected) {
  Encoder enc;
  CodecParams p;
  p.width = 64;
  p.height = 48;
  ASSERT_TRUE(enc.Init(p).ok());
  Frame wrong = Frame::Create(32, 32).value();
  EXPECT_EQ(enc.AddFrame(wrong).code(), StatusCode::kInvalidArgument);
}

TEST(CodecTest, AddFrameBeforeInitFails) {
  Encoder enc;
  Frame f = Frame::Create(64, 48).value();
  EXPECT_EQ(enc.AddFrame(f).code(), StatusCode::kFailedPrecondition);
}

TEST(CodecTest, NonMultipleOf8DimensionsWork) {
  // 36x28: luma pads to 40x32, chroma 18x14 pads to 24x16.
  SceneModel model = SceneModel::Generate(5, 2.0);
  RenderOptions ro;
  ro.width = 36;
  ro.height = 28;
  ro.fps = 10.0;
  auto clip = RenderVideo(model, 0.0, 0.5, ro);
  ASSERT_TRUE(clip.ok());
  CodecParams p;
  p.width = 36;
  p.height = 28;
  p.fps = 10.0;
  p.quantizer = 2;
  auto bytes = Encoder::EncodeVideo(*clip, p);
  ASSERT_TRUE(bytes.ok());
  auto decoded = Decoder::DecodeVideo(*bytes);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->frames.size(), clip->frames.size());
  EXPECT_GT(Psnr(clip->frames[0], decoded->frames[0]), 32.0);
}

TEST(DecoderTest, TruncatedStreamIsCorruption) {
  VideoBuffer clip = TestClip(3);
  CodecParams p;
  p.width = 64;
  p.height = 48;
  p.fps = 10.0;
  auto bytes = Encoder::EncodeVideo(clip, p);
  ASSERT_TRUE(bytes.ok());
  std::vector<uint8_t> cut(bytes->begin(), bytes->begin() + bytes->size() / 2);
  Decoder dec;
  ASSERT_TRUE(dec.Open(cut.data(), cut.size()).ok());
  Frame f;
  Status st = Status::OK();
  while (st.ok()) st = dec.NextFrame(&f);
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
}

TEST(DecoderTest, BadMagicRejected) {
  std::vector<uint8_t> junk(64, 0x77);
  Decoder dec;
  EXPECT_EQ(dec.Open(junk.data(), junk.size()).code(), StatusCode::kCorruption);
}

TEST(DecoderTest, TooShortHeaderRejected) {
  std::vector<uint8_t> tiny(4, 'V');
  Decoder dec;
  EXPECT_EQ(dec.Open(tiny.data(), tiny.size()).code(), StatusCode::kCorruption);
}

TEST(DecoderTest, NextFrameAtEndReturnsNotFound) {
  VideoBuffer clip = TestClip(2);
  CodecParams p;
  p.width = 64;
  p.height = 48;
  p.fps = 10.0;
  auto bytes = Encoder::EncodeVideo(clip, p);
  ASSERT_TRUE(bytes.ok());
  Decoder dec;
  ASSERT_TRUE(dec.Open(bytes->data(), bytes->size()).ok());
  Frame f;
  ASSERT_TRUE(dec.NextFrame(&f).ok());
  ASSERT_TRUE(dec.NextFrame(&f).ok());
  EXPECT_EQ(dec.NextFrame(&f).code(), StatusCode::kNotFound);
}

TEST(CodecTest, PFramesExploitTemporalRedundancy) {
  // A static clip should compress P-frames far better than I-frames.
  SceneModel model = SceneModel::Generate(9, 20.0);
  RenderOptions ro;
  ro.width = 64;
  ro.height = 48;
  ro.fps = 10.0;
  auto clip = RenderVideo(model, 0.0, 0.8, ro);
  ASSERT_TRUE(clip.ok());
  CodecParams all_i;
  all_i.width = 64;
  all_i.height = 48;
  all_i.fps = 10.0;
  all_i.gop_size = 1;
  CodecParams with_p = all_i;
  with_p.gop_size = 8;
  auto bytes_i = Encoder::EncodeVideo(*clip, all_i);
  auto bytes_p = Encoder::EncodeVideo(*clip, with_p);
  ASSERT_TRUE(bytes_i.ok());
  ASSERT_TRUE(bytes_p.ok());
  EXPECT_LT(bytes_p->size(), bytes_i->size());
}


TEST(CodecTest, MotionCompensationBeatsZeroMotionOnPan) {
  // A strongly panning clip: motion search should shrink the residuals and
  // the bit stream relative to zero-motion prediction.
  SceneModel model = SceneModel::Generate(31, 20.0);
  RenderOptions ro;
  ro.width = 64;
  ro.height = 48;
  ro.fps = 10.0;
  auto base = RenderVideo(model, 0.0, 1.0, ro);
  ASSERT_TRUE(base.ok());
  // Impose a global 3 px/frame horizontal pan by shifting each frame.
  VideoBuffer panned;
  panned.fps = 10.0;
  for (size_t i = 0; i < base->frames.size(); ++i) {
    Frame f = Frame::Create(64, 48).value();
    const int shift = static_cast<int>(i) * 3;
    for (int y = 0; y < 48; ++y) {
      for (int x = 0; x < 64; ++x) {
        f.SetY(x, y, base->frames[0].Y(std::min(63, x + shift), y));
      }
    }
    panned.frames.push_back(std::move(f));
  }
  CodecParams p;
  p.width = 64;
  p.height = 48;
  p.fps = 10.0;
  p.gop_size = 10;
  p.motion_search_range = 7;
  auto with_mc = Encoder::EncodeVideo(panned, p);
  p.motion_search_range = 0;
  auto without = Encoder::EncodeVideo(panned, p);
  ASSERT_TRUE(with_mc.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_LT(with_mc->size(), without->size());
  // And both still decode to the same content within codec tolerance.
  auto dec = Decoder::DecodeVideo(*with_mc);
  ASSERT_TRUE(dec.ok());
  EXPECT_GT(Psnr(panned.frames.back(), dec->frames.back()), 30.0);
}

TEST(CodecTest, MotionRangeValidated) {
  CodecParams p;
  p.motion_search_range = -1;
  EXPECT_FALSE(p.Validate().ok());
  p.motion_search_range = 16;
  EXPECT_FALSE(p.Validate().ok());
  p.motion_search_range = 15;
  EXPECT_TRUE(p.Validate().ok());
}

TEST(CodecTest, ZeroMotionRangeRoundTrips) {
  VideoBuffer clip = TestClip(8);
  CodecParams p;
  p.width = 64;
  p.height = 48;
  p.fps = 10.0;
  p.gop_size = 4;
  p.motion_search_range = 0;
  auto bytes = Encoder::EncodeVideo(clip, p);
  ASSERT_TRUE(bytes.ok());
  auto dec = Decoder::DecodeVideo(*bytes);
  ASSERT_TRUE(dec.ok());
  ASSERT_EQ(dec->frames.size(), clip.frames.size());
  EXPECT_GT(Psnr(clip.frames.back(), dec->frames.back()), 30.0);
}

}  // namespace
}  // namespace vcd::video
