#include "video/dct.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace vcd::video {
namespace {

TEST(DctTest, ConstantBlockHasOnlyDc) {
  std::array<float, 64> block;
  block.fill(10.0f);
  std::array<float, 64> coef;
  Dct8x8::Forward(block, &coef);
  // Orthonormal scaling: DC = 8 * value.
  EXPECT_NEAR(coef[0], 80.0f, 1e-3f);
  for (int i = 1; i < 64; ++i) EXPECT_NEAR(coef[i], 0.0f, 1e-3f) << "coef " << i;
}

TEST(DctTest, DcEqualsEightTimesMean) {
  Rng rng(3);
  std::array<float, 64> block;
  double mean = 0;
  for (auto& v : block) {
    v = static_cast<float>(rng.UniformDouble(-128, 127));
    mean += v;
  }
  mean /= 64.0;
  std::array<float, 64> coef;
  Dct8x8::Forward(block, &coef);
  EXPECT_NEAR(coef[0], 8.0 * mean, 1e-2);
}

TEST(DctTest, RoundTripIsIdentity) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    std::array<float, 64> block, coef, back;
    for (auto& v : block) v = static_cast<float>(rng.UniformDouble(-128, 127));
    Dct8x8::Forward(block, &coef);
    Dct8x8::Inverse(coef, &back);
    for (int i = 0; i < 64; ++i) EXPECT_NEAR(back[i], block[i], 1e-2f);
  }
}

TEST(DctTest, ParsevalEnergyPreserved) {
  Rng rng(11);
  std::array<float, 64> block, coef;
  double es = 0;
  for (auto& v : block) {
    v = static_cast<float>(rng.UniformDouble(-100, 100));
    es += static_cast<double>(v) * v;
  }
  Dct8x8::Forward(block, &coef);
  double ec = 0;
  for (auto c : coef) ec += static_cast<double>(c) * c;
  EXPECT_NEAR(ec, es, es * 1e-4);
}

TEST(DctTest, Linearity) {
  Rng rng(13);
  std::array<float, 64> a, b, sum, ca, cb, cs;
  for (int i = 0; i < 64; ++i) {
    a[i] = static_cast<float>(rng.UniformDouble(-50, 50));
    b[i] = static_cast<float>(rng.UniformDouble(-50, 50));
    sum[i] = a[i] + 2.0f * b[i];
  }
  Dct8x8::Forward(a, &ca);
  Dct8x8::Forward(b, &cb);
  Dct8x8::Forward(sum, &cs);
  for (int i = 0; i < 64; ++i) EXPECT_NEAR(cs[i], ca[i] + 2.0f * cb[i], 1e-2f);
}

TEST(DctTest, HorizontalCosineConcentratesInRow0) {
  // A pure horizontal cosine at frequency u=1 should put energy at (0, 1).
  std::array<float, 64> block, coef;
  const double pi = std::acos(-1.0);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      block[y * 8 + x] = static_cast<float>(std::cos((2 * x + 1) * pi / 16.0));
    }
  }
  Dct8x8::Forward(block, &coef);
  // coef index (row y=0, col u=1) = 0*8+1.
  const float main = std::fabs(coef[1]);
  for (int i = 0; i < 64; ++i) {
    if (i == 1) continue;
    EXPECT_LT(std::fabs(coef[i]), main * 0.01f) << "leakage at " << i;
  }
}

}  // namespace
}  // namespace vcd::video
