#include "video/partial_decoder.h"

#include <gtest/gtest.h>

#include "util/logging.h"

#include "video/codec.h"
#include "video/scene_model.h"
#include "video/synthetic.h"

namespace vcd::video {
namespace {

std::vector<uint8_t> EncodeTestClip(int frames, int gop, int* w = nullptr,
                                    int* h = nullptr) {
  SceneModel model = SceneModel::Generate(21, 10.0);
  RenderOptions ro;
  ro.width = 64;
  ro.height = 48;
  ro.fps = 10.0;
  auto clip = RenderVideo(model, 0.0, frames / ro.fps, ro);
  VCD_CHECK(clip.ok(), "render failed");
  CodecParams p;
  p.width = 64;
  p.height = 48;
  p.fps = 10.0;
  p.gop_size = gop;
  p.quantizer = 3;
  if (w != nullptr) *w = p.width;
  if (h != nullptr) *h = p.height;
  auto bytes = Encoder::EncodeVideo(*clip, p);
  VCD_CHECK(bytes.ok(), "encode failed");
  return std::move(bytes).value();
}

TEST(PartialDecoderTest, ExtractsOneDcFramePerGop) {
  auto bytes = EncodeTestClip(12, 4);
  auto dcs = PartialDecoder::ExtractAll(bytes);
  ASSERT_TRUE(dcs.ok());
  EXPECT_EQ(dcs->size(), 3u);  // frames 0, 4, 8
  EXPECT_EQ((*dcs)[0].frame_index, 0);
  EXPECT_EQ((*dcs)[1].frame_index, 4);
  EXPECT_EQ((*dcs)[2].frame_index, 8);
}

TEST(PartialDecoderTest, TimestampsFollowFps) {
  auto bytes = EncodeTestClip(12, 4);
  auto dcs = PartialDecoder::ExtractAll(bytes);
  ASSERT_TRUE(dcs.ok());
  EXPECT_NEAR((*dcs)[1].timestamp, 0.4, 1e-9);
  EXPECT_NEAR((*dcs)[2].timestamp, 0.8, 1e-9);
}

TEST(PartialDecoderTest, BlockGridDimensions) {
  auto bytes = EncodeTestClip(4, 4);
  auto dcs = PartialDecoder::ExtractAll(bytes);
  ASSERT_TRUE(dcs.ok());
  EXPECT_EQ((*dcs)[0].blocks_x, 8);  // 64/8
  EXPECT_EQ((*dcs)[0].blocks_y, 6);  // 48/8
  EXPECT_EQ((*dcs)[0].dc.size(), 48u);
}

TEST(PartialDecoderTest, DcMatchesFullDecodeBlockMeans) {
  auto bytes = EncodeTestClip(8, 4);
  auto dcs = PartialDecoder::ExtractAll(bytes);
  ASSERT_TRUE(dcs.ok());
  auto full = Decoder::DecodeVideo(bytes);
  ASSERT_TRUE(full.ok());
  for (const DcFrame& dcf : *dcs) {
    const Frame& frame = full->frames[static_cast<size_t>(dcf.frame_index)];
    for (int by = 0; by < dcf.blocks_y; ++by) {
      for (int bx = 0; bx < dcf.blocks_x; ++bx) {
        double mean = 0;
        for (int y = 0; y < 8; ++y) {
          for (int x = 0; x < 8; ++x) mean += frame.Y(bx * 8 + x, by * 8 + y);
        }
        mean /= 64.0;
        // DC quantization step is 8 → block-mean resolution is 1 level; AC
        // truncation in the reconstruction adds a little more slack.
        EXPECT_NEAR(dcf.BlockMean(bx, by), mean, 2.5)
            << "frame " << dcf.frame_index << " block " << bx << "," << by;
      }
    }
  }
}

TEST(PartialDecoderTest, HeaderExposed) {
  auto bytes = EncodeTestClip(4, 2);
  PartialDecoder pd;
  ASSERT_TRUE(pd.Open(bytes.data(), bytes.size()).ok());
  EXPECT_EQ(pd.header().width, 64);
  EXPECT_EQ(pd.header().gop_size, 2);
}

TEST(PartialDecoderTest, EndOfStreamIsNotFound) {
  auto bytes = EncodeTestClip(4, 4);
  PartialDecoder pd;
  ASSERT_TRUE(pd.Open(bytes.data(), bytes.size()).ok());
  DcFrame f;
  ASSERT_TRUE(pd.NextKeyFrame(&f).ok());
  EXPECT_EQ(pd.NextKeyFrame(&f).code(), StatusCode::kNotFound);
}

TEST(PartialDecoderTest, AllIntraStreamYieldsEveryFrame) {
  auto bytes = EncodeTestClip(5, 1);
  auto dcs = PartialDecoder::ExtractAll(bytes);
  ASSERT_TRUE(dcs.ok());
  EXPECT_EQ(dcs->size(), 5u);
}

TEST(PartialDecoderTest, CorruptMarkerDetected) {
  auto bytes = EncodeTestClip(4, 4);
  bytes[StreamHeaderSize()] = 0x00;  // clobber first frame marker
  PartialDecoder pd;
  ASSERT_TRUE(pd.Open(bytes.data(), bytes.size()).ok());
  DcFrame f;
  EXPECT_EQ(pd.NextKeyFrame(&f).code(), StatusCode::kCorruption);
}

TEST(PartialDecoderTest, TruncatedPayloadDetected) {
  auto bytes = EncodeTestClip(4, 4);
  bytes.resize(StreamHeaderSize() + 3);
  PartialDecoder pd;
  ASSERT_TRUE(pd.Open(bytes.data(), bytes.size()).ok());
  DcFrame f;
  EXPECT_EQ(pd.NextKeyFrame(&f).code(), StatusCode::kCorruption);
}

TEST(PartialDecoderTest, BlockMeanInverseOfDc) {
  DcFrame f;
  f.blocks_x = 1;
  f.blocks_y = 1;
  f.dc = {80.0f};  // 8*(mean-128) = 80 → mean = 138
  EXPECT_FLOAT_EQ(f.BlockMean(0, 0), 138.0f);
}

}  // namespace
}  // namespace vcd::video
