#include "video/bitstream.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace vcd::video {
namespace {

TEST(BitWriterTest, SingleBits) {
  BitWriter w;
  w.WriteBits(1, 1);
  w.WriteBits(0, 1);
  w.WriteBits(1, 1);
  auto bytes = w.Finish();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0b10100000);
}

TEST(BitWriterTest, MultiByteValue) {
  BitWriter w;
  w.WriteBits(0xABCD, 16);
  auto bytes = w.Finish();
  ASSERT_EQ(bytes.size(), 2u);
  EXPECT_EQ(bytes[0], 0xAB);
  EXPECT_EQ(bytes[1], 0xCD);
}

TEST(BitRoundTripTest, RawBits) {
  Rng rng(3);
  BitWriter w;
  std::vector<std::pair<uint32_t, int>> vals;
  for (int i = 0; i < 500; ++i) {
    int n = 1 + static_cast<int>(rng.Uniform(32));
    uint32_t v = static_cast<uint32_t>(rng.Next());
    if (n < 32) v &= (uint32_t{1} << n) - 1;
    vals.emplace_back(v, n);
    w.WriteBits(v, n);
  }
  auto bytes = w.Finish();
  BitReader r(bytes.data(), bytes.size());
  for (auto [v, n] : vals) {
    uint32_t got = 0;
    ASSERT_TRUE(r.ReadBits(n, &got).ok());
    EXPECT_EQ(got, v);
  }
}

TEST(ExpGolombTest, KnownCodes) {
  // UE(0) = "1" (1 bit), UE(1) = "010", UE(2) = "011", UE(3) = "00100".
  BitWriter w;
  w.WriteUE(0);
  auto b0 = w.Finish();
  EXPECT_EQ(b0[0] >> 7, 1);

  BitWriter w1;
  w1.WriteUE(1);
  auto b1 = w1.Finish();
  EXPECT_EQ(b1[0] >> 5, 0b010);
}

TEST(ExpGolombTest, UnsignedRoundTrip) {
  Rng rng(5);
  BitWriter w;
  std::vector<uint32_t> vals;
  for (int i = 0; i < 1000; ++i) {
    uint32_t v = static_cast<uint32_t>(rng.Uniform(1 << 20));
    vals.push_back(v);
    w.WriteUE(v);
  }
  auto bytes = w.Finish();
  BitReader r(bytes.data(), bytes.size());
  for (uint32_t v : vals) {
    uint32_t got = 0;
    ASSERT_TRUE(r.ReadUE(&got).ok());
    EXPECT_EQ(got, v);
  }
}

TEST(ExpGolombTest, SignedRoundTrip) {
  Rng rng(7);
  BitWriter w;
  std::vector<int32_t> vals;
  for (int i = 0; i < 1000; ++i) {
    int32_t v = static_cast<int32_t>(rng.UniformInt(-100000, 100000));
    vals.push_back(v);
    w.WriteSE(v);
  }
  // Include boundary values.
  for (int32_t v : {0, 1, -1, 2, -2}) {
    vals.push_back(v);
    w.WriteSE(v);
  }
  auto bytes = w.Finish();
  BitReader r(bytes.data(), bytes.size());
  for (int32_t v : vals) {
    int32_t got = 0;
    ASSERT_TRUE(r.ReadSE(&got).ok());
    EXPECT_EQ(got, v);
  }
}

TEST(BitReaderTest, ExhaustionIsCorruption) {
  BitWriter w;
  w.WriteBits(0xFF, 8);
  auto bytes = w.Finish();
  BitReader r(bytes.data(), bytes.size());
  uint32_t v;
  ASSERT_TRUE(r.ReadBits(8, &v).ok());
  EXPECT_EQ(r.ReadBits(1, &v).code(), StatusCode::kCorruption);
}

TEST(BitReaderTest, EmptyStream) {
  BitReader r(nullptr, 0);
  uint32_t v;
  EXPECT_EQ(r.ReadBits(1, &v).code(), StatusCode::kCorruption);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BitReaderTest, MalformedExpGolombPrefix) {
  // 5 zero bytes: 40 leading zeros exceed the 31-zero legal prefix.
  std::vector<uint8_t> bytes(5, 0);
  BitReader r(bytes.data(), bytes.size());
  uint32_t v;
  EXPECT_EQ(r.ReadUE(&v).code(), StatusCode::kCorruption);
}

TEST(BitReaderTest, AlignAndSeek) {
  BitWriter w;
  w.WriteBits(0b101, 3);
  w.AlignToByte();
  w.WriteBits(0xEE, 8);
  auto bytes = w.Finish();
  ASSERT_EQ(bytes.size(), 2u);
  BitReader r(bytes.data(), bytes.size());
  uint32_t v;
  ASSERT_TRUE(r.ReadBits(3, &v).ok());
  r.AlignToByte();
  ASSERT_TRUE(r.ReadBits(8, &v).ok());
  EXPECT_EQ(v, 0xEEu);
  ASSERT_TRUE(r.SeekToBit(0).ok());
  ASSERT_TRUE(r.ReadBits(3, &v).ok());
  EXPECT_EQ(v, 0b101u);
  EXPECT_EQ(r.SeekToBit(1000).code(), StatusCode::kOutOfRange);
}

TEST(BitWriterTest, FinishIsByteAligned) {
  BitWriter w;
  w.WriteBits(1, 1);
  auto bytes = w.Finish();
  EXPECT_EQ(bytes.size(), 1u);
}

}  // namespace
}  // namespace vcd::video
