#include "video/frame.h"

#include <gtest/gtest.h>

namespace vcd::video {
namespace {

TEST(FrameTest, CreateValid) {
  auto f = Frame::Create(64, 48);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->width(), 64);
  EXPECT_EQ(f->height(), 48);
  EXPECT_EQ(f->chroma_width(), 32);
  EXPECT_EQ(f->chroma_height(), 24);
  EXPECT_EQ(f->y_plane().size(), 64u * 48u);
  EXPECT_EQ(f->cb_plane().size(), 32u * 24u);
}

TEST(FrameTest, CreateRejectsBadDims) {
  EXPECT_FALSE(Frame::Create(0, 48).ok());
  EXPECT_FALSE(Frame::Create(64, -2).ok());
  EXPECT_FALSE(Frame::Create(63, 48).ok());  // odd width
  EXPECT_FALSE(Frame::Create(64, 47).ok());  // odd height
}

TEST(FrameTest, DefaultsToVideoBlack) {
  auto f = Frame::Create(16, 16).value();
  EXPECT_EQ(f.Y(0, 0), 16);
  EXPECT_EQ(f.Cb(0, 0), 128);
  EXPECT_EQ(f.Cr(0, 0), 128);
}

TEST(FrameTest, SetAndGet) {
  auto f = Frame::Create(16, 16).value();
  f.SetY(3, 5, 200);
  f.SetCb(1, 2, 90);
  f.SetCr(7, 7, 160);
  EXPECT_EQ(f.Y(3, 5), 200);
  EXPECT_EQ(f.Cb(1, 2), 90);
  EXPECT_EQ(f.Cr(7, 7), 160);
}

TEST(FrameTest, Equality) {
  auto a = Frame::Create(16, 16).value();
  auto b = Frame::Create(16, 16).value();
  EXPECT_TRUE(a == b);
  b.SetY(0, 0, 99);
  EXPECT_FALSE(a == b);
}

TEST(VideoBufferTest, Duration) {
  VideoBuffer v;
  v.fps = 25.0;
  v.frames.resize(50, Frame::Create(16, 16).value());
  EXPECT_EQ(v.size(), 50u);
  EXPECT_DOUBLE_EQ(v.DurationSeconds(), 2.0);
}

TEST(VideoBufferTest, ZeroFpsDurationIsZero) {
  VideoBuffer v;
  v.fps = 0;
  v.frames.resize(10, Frame::Create(16, 16).value());
  EXPECT_EQ(v.DurationSeconds(), 0.0);
}

}  // namespace
}  // namespace vcd::video
