#include "video/edit.h"

#include <gtest/gtest.h>

#include "util/logging.h"

#include <algorithm>
#include <set>

#include "video/scene_model.h"
#include "video/synthetic.h"

namespace vcd::video {
namespace {

VideoBuffer Clip(double seconds = 1.0, double fps = 10.0, uint64_t seed = 3) {
  SceneModel m = SceneModel::Generate(seed, seconds + 1.0);
  RenderOptions ro;
  ro.width = 32;
  ro.height = 32;
  ro.fps = fps;
  auto v = RenderVideo(m, 0.0, seconds, ro);
  VCD_CHECK(v.ok(), "render failed");
  return std::move(v).value();
}

TEST(EditTest, BrightnessShiftsLuma) {
  VideoBuffer in = Clip();
  VideoBuffer out = AdjustBrightness(in, 20);
  int higher = 0, total = 0;
  for (size_t i = 0; i < in.frames[0].y_plane().size(); ++i) {
    int a = in.frames[0].y_plane()[i];
    int b = out.frames[0].y_plane()[i];
    if (a + 20 <= 255) {
      EXPECT_EQ(b, a + 20);
      ++higher;
    }
    ++total;
  }
  EXPECT_GT(higher, total / 2);
  // Chroma untouched.
  EXPECT_EQ(in.frames[0].cb_plane(), out.frames[0].cb_plane());
}

TEST(EditTest, BrightnessClamps) {
  VideoBuffer in = Clip();
  VideoBuffer bright = AdjustBrightness(in, 300);
  for (uint8_t v : bright.frames[0].y_plane()) EXPECT_EQ(v, 255);
  VideoBuffer dark = AdjustBrightness(in, -300);
  for (uint8_t v : dark.frames[0].y_plane()) EXPECT_EQ(v, 0);
}

TEST(EditTest, ColorShiftsChromaOnly) {
  VideoBuffer in = Clip();
  VideoBuffer out = AdjustColor(in, 10, -10);
  EXPECT_EQ(in.frames[0].y_plane(), out.frames[0].y_plane());
  EXPECT_NE(in.frames[0].cb_plane(), out.frames[0].cb_plane());
  EXPECT_NE(in.frames[0].cr_plane(), out.frames[0].cr_plane());
}

TEST(EditTest, ContrastExpandsAround128) {
  VideoBuffer in = Clip();
  VideoBuffer out = AdjustContrast(in, 2.0);
  for (size_t i = 0; i < 50; ++i) {
    int a = in.frames[0].y_plane()[i];
    int b = out.frames[0].y_plane()[i];
    int expect = std::clamp(128 + (a - 128) * 2, 0, 255);
    EXPECT_NEAR(b, expect, 1);
  }
}

TEST(EditTest, ContrastIdentityGain) {
  VideoBuffer in = Clip();
  VideoBuffer out = AdjustContrast(in, 1.0);
  EXPECT_EQ(in.frames[0].y_plane(), out.frames[0].y_plane());
}

TEST(EditTest, NoiseIsZeroMeanish) {
  VideoBuffer in = Clip();
  VideoBuffer out = AddGaussianNoise(in, 4.0, 99);
  double delta = 0;
  size_t n = in.frames[0].y_plane().size();
  for (size_t i = 0; i < n; ++i) {
    delta += static_cast<double>(out.frames[0].y_plane()[i]) -
             static_cast<double>(in.frames[0].y_plane()[i]);
  }
  EXPECT_NEAR(delta / static_cast<double>(n), 0.0, 1.0);
}

TEST(EditTest, NoiseDeterministicPerSeed) {
  VideoBuffer in = Clip();
  VideoBuffer a = AddGaussianNoise(in, 4.0, 1);
  VideoBuffer b = AddGaussianNoise(in, 4.0, 1);
  VideoBuffer c = AddGaussianNoise(in, 4.0, 2);
  EXPECT_TRUE(a.frames[0] == b.frames[0]);
  EXPECT_FALSE(a.frames[0] == c.frames[0]);
}

TEST(EditTest, ResizeDimensions) {
  VideoBuffer in = Clip();
  auto out = Resize(in, 48, 24);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->frames[0].width(), 48);
  EXPECT_EQ(out->frames[0].height(), 24);
  EXPECT_EQ(out->frames.size(), in.frames.size());
}

TEST(EditTest, ResizeRejectsOddDims) {
  VideoBuffer in = Clip();
  EXPECT_FALSE(Resize(in, 47, 24).ok());
  EXPECT_FALSE(Resize(in, 48, 0).ok());
}

TEST(EditTest, ResizeRoundTripPreservesContent) {
  VideoBuffer in = Clip();
  auto up = Resize(in, 64, 64);
  ASSERT_TRUE(up.ok());
  auto back = Resize(*up, 32, 32);
  ASSERT_TRUE(back.ok());
  double mad = 0;
  size_t n = in.frames[0].y_plane().size();
  for (size_t i = 0; i < n; ++i) {
    mad += std::abs(static_cast<int>(in.frames[0].y_plane()[i]) -
                    static_cast<int>(back->frames[0].y_plane()[i]));
  }
  EXPECT_LT(mad / static_cast<double>(n), 4.0);
}

TEST(EditTest, ResampleFpsPreservesDuration) {
  VideoBuffer in = Clip(2.0, 30.0);
  auto out = ResampleFps(in, 25.0);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->fps, 25.0);
  EXPECT_NEAR(out->DurationSeconds(), in.DurationSeconds(), 0.1);
  EXPECT_EQ(out->frames.size(), 50u);
}

TEST(EditTest, ResampleFpsSamplesNearestFrames) {
  VideoBuffer in = Clip(1.0, 10.0);
  auto out = ResampleFps(in, 5.0);
  ASSERT_TRUE(out.ok());
  // Frame at t=0.2 (index 1 at 5 fps) should be source frame 2.
  EXPECT_TRUE(out->frames[1] == in.frames[2]);
}

TEST(EditTest, ResampleRejectsBadFps) {
  VideoBuffer in = Clip();
  EXPECT_FALSE(ResampleFps(in, 0).ok());
}

TEST(EditTest, ReorderKeepsFrameMultiset) {
  VideoBuffer in = Clip(2.0, 10.0);
  VideoBuffer out = ReorderSegments(in, 0.5, 11);
  ASSERT_EQ(out.frames.size(), in.frames.size());
  // Every source frame appears exactly once (segments are permuted intact);
  // verify via per-frame luma sums as a cheap multiset fingerprint.
  auto key = [](const Frame& f) {
    long sum = 0;
    for (uint8_t v : f.y_plane()) sum += v;
    return sum;
  };
  std::multiset<long> a, b;
  for (const auto& f : in.frames) a.insert(key(f));
  for (const auto& f : out.frames) b.insert(key(f));
  EXPECT_EQ(a, b);
}

TEST(EditTest, ReorderActuallyReorders) {
  VideoBuffer in = Clip(2.0, 10.0);
  VideoBuffer out = ReorderSegments(in, 0.5, 11);
  bool moved = false;
  for (size_t i = 0; i < in.frames.size(); ++i) {
    if (!(in.frames[i] == out.frames[i])) {
      moved = true;
      break;
    }
  }
  EXPECT_TRUE(moved);
}

TEST(EditTest, ReorderSingleSegmentIsIdentity) {
  VideoBuffer in = Clip(0.4, 10.0);
  VideoBuffer out = ReorderSegments(in, 10.0, 11);
  ASSERT_EQ(out.frames.size(), in.frames.size());
  for (size_t i = 0; i < in.frames.size(); ++i) {
    EXPECT_TRUE(in.frames[i] == out.frames[i]);
  }
}

TEST(EditTest, AppendFrames) {
  VideoBuffer a = Clip(0.5, 10.0, 1);
  VideoBuffer b = Clip(0.3, 10.0, 2);
  size_t na = a.frames.size();
  AppendFrames(b, &a);
  EXPECT_EQ(a.frames.size(), na + b.frames.size());
  EXPECT_TRUE(a.frames[na] == b.frames[0]);
}

}  // namespace
}  // namespace vcd::video
