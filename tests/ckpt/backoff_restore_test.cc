/// \file backoff_restore_test.cc
/// Satellite of the checkpoint/restore PR: the per-stream health machine's
/// readmission backoff must survive a checkpoint/restore cycle exactly —
/// the countdown resumes where the snapshot cut it, it is not reset to the
/// full backoff, and readmission does not fire twice (DESIGN.md §12/§16).
///
/// Quarantine is driven deterministically by submitting frames with
/// `degraded = true` (a decode-layer fault marker), so this test needs no
/// faultfx build.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/config.h"
#include "core/monitor.h"
#include "parallel/executor.h"
#include "video/partial_decoder.h"

namespace vcd {
namespace {

using core::DetectorConfig;
using core::ParallelConfig;
using parallel::StreamExecutor;
using parallel::StreamHealth;

DetectorConfig SmallConfig() {
  DetectorConfig c;
  c.K = 32;
  c.window_seconds = 4.0;
  c.delta = 0.6;
  return c;
}

ParallelConfig BackoffConfig() {
  ParallelConfig pc;
  pc.num_threads = 1;  // single shard: health transitions in submission order
  pc.on_corruption = core::CorruptionPolicy::kQuarantine;
  pc.degraded_after_faults = 1;
  pc.quarantine_after_faults = 2;
  pc.recover_after_frames = 2;
  pc.quarantine_backoff_frames = 8;
  pc.quarantine_backoff_max_frames = 32;
  return pc;
}

video::DcFrame Frame(int64_t slot, bool degraded) {
  video::DcFrame f;
  f.blocks_x = 4;
  f.blocks_y = 4;
  f.frame_index = slot * 12;
  f.timestamp = static_cast<double>(slot) / 2.5;
  f.degraded = degraded;
  f.dc.resize(16);
  for (size_t i = 0; i < 16; ++i) {
    f.dc[i] = 60.0f * std::sin(0.3f * static_cast<float>(slot) +
                               0.9f * static_cast<float>(i));
  }
  return f;
}

TEST(BackoffRestoreTest, ReadmissionCountdownSurvivesRestore) {
  auto exec = StreamExecutor::Create(SmallConfig(), BackoffConfig()).value();
  auto sid = exec->OpenStream("s");
  ASSERT_TRUE(sid.ok());
  int64_t slot = 0;
  // Two consecutive faults: quarantined with quarantine_remaining = 8 and
  // the next backoff doubled to 16.
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(exec->ProcessKeyFrame(*sid, Frame(slot++, true)).ok());
  }
  // Serve 3 of the 8 backoff frames (discarded while quarantined).
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(exec->ProcessKeyFrame(*sid, Frame(slot++, false)).ok());
  }
  auto ckpt = exec->Checkpoint();
  ASSERT_TRUE(ckpt.ok()) << ckpt.status().ToString();
  ASSERT_EQ(ckpt->streams.size(), 1u);
  const core::StreamCkpt& s = ckpt->streams[0];
  EXPECT_EQ(s.health, static_cast<int>(StreamHealth::kQuarantined));
  EXPECT_EQ(s.quarantine_remaining, 5) << "3 of 8 backoff frames served";
  EXPECT_EQ(s.backoff_frames, 16) << "next quarantine doubles";

  // Crash here. Restore onto a fresh executor.
  auto restored = StreamExecutor::Create(SmallConfig(), BackoffConfig()).value();
  ASSERT_TRUE(restored->RestoreCkpt(*ckpt).ok());
  {
    auto h = restored->HealthOf(*sid);
    ASSERT_TRUE(h.ok());
    EXPECT_EQ(*h, StreamHealth::kQuarantined);
  }
  // 4 more clean frames: countdown 5 → 1, still quarantined. If restore had
  // reset the countdown to the full backoff (8 or 16), the stream would
  // stay quarantined far longer and the assertions below would catch it.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(restored->ProcessKeyFrame(*sid, Frame(slot++, false)).ok());
  }
  {
    auto h = restored->HealthOf(*sid);
    ASSERT_TRUE(h.ok());
    EXPECT_EQ(*h, StreamHealth::kQuarantined) << "countdown must not reset";
  }
  // The 5th frame serves the last backoff slot: readmitted on probation.
  ASSERT_TRUE(restored->ProcessKeyFrame(*sid, Frame(slot++, false)).ok());
  {
    auto h = restored->HealthOf(*sid);
    ASSERT_TRUE(h.ok());
    EXPECT_EQ(*h, StreamHealth::kDegraded) << "readmission fires exactly once";
  }
  // Exactly one quarantine exit: the gauge is back to zero, and the event
  // counter still shows the single pre-crash entry transition.
  auto stats = restored->Stats();
  int gauge = 0;
  for (const auto& sh : stats.shards) gauge += sh.streams_quarantined;
  EXPECT_EQ(gauge, 0) << "double-fire would leave the gauge negative or stale";
  // Two clean probation frames: healthy again, backoff reset for the future.
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(restored->ProcessKeyFrame(*sid, Frame(slot++, false)).ok());
  }
  {
    auto h = restored->HealthOf(*sid);
    ASSERT_TRUE(h.ok());
    EXPECT_EQ(*h, StreamHealth::kHealthy);
  }
  auto ckpt2 = restored->Checkpoint();
  ASSERT_TRUE(ckpt2.ok());
  ASSERT_EQ(ckpt2->streams.size(), 1u);
  EXPECT_EQ(ckpt2->streams[0].backoff_frames, 8)
      << "recovery resets the doubled backoff";
}

TEST(BackoffRestoreTest, RestoredRunMatchesUninterruptedRun) {
  // The health trajectory of checkpoint → restore → continue must be
  // indistinguishable from a run that was never interrupted: same frames,
  // same transitions, same final checkpoint image of the health fields.
  const int kCut = 5;    // checkpoint after this many frames
  const int kTotal = 14; // 2 faults + 12 clean
  auto feed = [](StreamExecutor* e, int sid, int from, int to) {
    for (int i = from; i < to; ++i) {
      ASSERT_TRUE(e->ProcessKeyFrame(sid, Frame(i, i < 2)).ok());
    }
  };

  auto uninterrupted =
      StreamExecutor::Create(SmallConfig(), BackoffConfig()).value();
  auto sid_a = uninterrupted->OpenStream("s");
  ASSERT_TRUE(sid_a.ok());
  feed(uninterrupted.get(), *sid_a, 0, kTotal);
  auto final_a = uninterrupted->Checkpoint();
  ASSERT_TRUE(final_a.ok());

  auto first = StreamExecutor::Create(SmallConfig(), BackoffConfig()).value();
  auto sid_b = first->OpenStream("s");
  ASSERT_TRUE(sid_b.ok());
  ASSERT_EQ(*sid_b, *sid_a);
  feed(first.get(), *sid_b, 0, kCut);
  auto mid = first->Checkpoint();
  ASSERT_TRUE(mid.ok());
  auto second = StreamExecutor::Create(SmallConfig(), BackoffConfig()).value();
  ASSERT_TRUE(second->RestoreCkpt(*mid).ok());
  feed(second.get(), *sid_b, kCut, kTotal);
  auto final_b = second->Checkpoint();
  ASSERT_TRUE(final_b.ok());

  ASSERT_EQ(final_a->streams.size(), 1u);
  ASSERT_EQ(final_b->streams.size(), 1u);
  const core::StreamCkpt& a = final_a->streams[0];
  const core::StreamCkpt& b = final_b->streams[0];
  EXPECT_EQ(a.health, b.health);
  EXPECT_EQ(a.consecutive_faults, b.consecutive_faults);
  EXPECT_EQ(a.consecutive_clean, b.consecutive_clean);
  EXPECT_EQ(a.quarantine_remaining, b.quarantine_remaining);
  EXPECT_EQ(a.backoff_frames, b.backoff_frames);
  EXPECT_EQ(a.max_timestamp, b.max_timestamp);
  EXPECT_EQ(a.saw_timestamp, b.saw_timestamp);
}

}  // namespace
}  // namespace vcd
