#include "ckpt/snapshot.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "ckpt/state_codec.h"
#include "core/config.h"
#include "util/status.h"

namespace vcd::ckpt {
namespace {

std::vector<Section> TwoSections() {
  Section a;
  a.id = kSectionMeta;
  a.payload = {1, 2, 3, 4, 5};
  Section b;
  b.id = kSectionQueryDb;
  b.payload = {};  // empty payloads are legal
  return {a, b};
}

TEST(SnapshotTest, RoundTrip) {
  const auto image = EncodeSnapshot(42, TwoSections());
  auto snap = DecodeSnapshot(image.data(), image.size());
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_EQ(snap->epoch, 42u);
  ASSERT_EQ(snap->sections.size(), 2u);
  EXPECT_EQ(snap->sections[0].id, kSectionMeta);
  EXPECT_EQ(snap->sections[0].payload, (std::vector<uint8_t>{1, 2, 3, 4, 5}));
  EXPECT_EQ(snap->sections[1].id, kSectionQueryDb);
  EXPECT_TRUE(snap->sections[1].payload.empty());
  EXPECT_EQ(snap->Find(kSectionMeta), &snap->sections[0]);
  EXPECT_EQ(snap->Find(kSectionDriver), nullptr);
}

TEST(SnapshotTest, EmptySnapshotRoundTrips) {
  const auto image = EncodeSnapshot(1, {});
  auto snap = DecodeSnapshot(image.data(), image.size());
  ASSERT_TRUE(snap.ok());
  EXPECT_TRUE(snap->sections.empty());
}

TEST(SnapshotTest, TruncationMatrix) {
  // Every strict prefix of the image must decode to Corruption — the torn
  // write produced by a crash mid-checkpoint, at every possible cut point.
  const auto image = EncodeSnapshot(7, TwoSections());
  for (size_t cut = 0; cut < image.size(); ++cut) {
    auto snap = DecodeSnapshot(image.data(), cut);
    EXPECT_EQ(snap.status().code(), StatusCode::kCorruption)
        << "cut at " << cut << " of " << image.size();
  }
  // And one byte of trailing garbage is equally fatal.
  auto padded = image;
  padded.push_back(0);
  EXPECT_EQ(DecodeSnapshot(padded.data(), padded.size()).status().code(),
            StatusCode::kCorruption);
}

TEST(SnapshotTest, EveryBitFlipIsDetected) {
  // CRC-32C catches any single-bit flip in a section payload; flips in the
  // header hit the magic/version/length validation instead. Either way the
  // decode must fail typed, never crash.
  const auto image = EncodeSnapshot(7, TwoSections());
  for (size_t byte = 0; byte < image.size(); ++byte) {
    auto flipped = image;
    flipped[byte] ^= 0x10;
    auto snap = DecodeSnapshot(flipped.data(), flipped.size());
    if (snap.ok()) {
      // The only survivable flip is inside the epoch field (no checksum of
      // its own; the Checkpointer cross-checks it against the MANIFEST).
      EXPECT_GE(byte, 8u);
      EXPECT_LT(byte, 16u);
      EXPECT_NE(snap->epoch, 7u);
    }
  }
}

TEST(SnapshotTest, BadMagicIsCorruption) {
  auto image = EncodeSnapshot(7, TwoSections());
  image[0] = 'X';
  EXPECT_EQ(DecodeSnapshot(image.data(), image.size()).status().code(),
            StatusCode::kCorruption);
}

TEST(SnapshotTest, NewerFormatVersionIsFailedPrecondition) {
  auto image = EncodeSnapshot(7, TwoSections());
  image[4] = static_cast<uint8_t>(kSnapshotFormatVersion + 1);  // LE u32
  EXPECT_EQ(DecodeSnapshot(image.data(), image.size()).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(StateCodecTest, MetaRoundTripAndCheck) {
  core::DetectorConfig config;
  config.K = 48;
  config.hash_seed = 0xfeed;
  config.delta = 0.7;
  config.window_seconds = 5.0;

  SnapshotState state;
  StampMeta(config, &state);
  state.query_db = {'V', 'C', 'D', 'Q'};
  state.next_stream_id = 9;
  state.next_seq = 1234;

  const auto sections = EncodeState(state);
  const auto image = EncodeSnapshot(3, sections);
  auto snap = DecodeSnapshot(image.data(), image.size());
  ASSERT_TRUE(snap.ok());
  auto back = DecodeState(*snap);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->epoch, 3u);
  EXPECT_EQ(back->k, 48);
  EXPECT_EQ(back->hash_seed, 0xfeedu);
  EXPECT_EQ(back->next_stream_id, 9);
  EXPECT_EQ(back->next_seq, 1234u);
  EXPECT_EQ(back->query_db, state.query_db);
  EXPECT_TRUE(back->driver.empty());

  EXPECT_TRUE(CheckMeta(*back, config).ok());
  core::DetectorConfig wrong = config;
  wrong.K = 32;
  EXPECT_EQ(CheckMeta(*back, wrong).code(), StatusCode::kFailedPrecondition);
  wrong = config;
  wrong.hash_seed = 1;
  EXPECT_EQ(CheckMeta(*back, wrong).code(), StatusCode::kFailedPrecondition);
  wrong = config;
  wrong.delta = 0.9;
  EXPECT_EQ(CheckMeta(*back, wrong).code(), StatusCode::kFailedPrecondition);
}

TEST(StateCodecTest, DriverSectionRoundTrips) {
  core::DetectorConfig config;
  SnapshotState state;
  StampMeta(config, &state);
  state.driver.push_back(DriverFileState{"a.vcds", 17, false, 3});
  state.driver.push_back(DriverFileState{"b.vcds", 500, true, 0});
  const auto image = EncodeSnapshot(1, EncodeState(state));
  auto snap = DecodeSnapshot(image.data(), image.size());
  ASSERT_TRUE(snap.ok());
  auto back = DecodeState(*snap);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->driver.size(), 2u);
  EXPECT_EQ(back->driver[0].path, "a.vcds");
  EXPECT_EQ(back->driver[0].frames_fed, 17);
  EXPECT_FALSE(back->driver[0].done);
  EXPECT_EQ(back->driver[0].stream_id, 3);
  EXPECT_EQ(back->driver[1].path, "b.vcds");
  EXPECT_TRUE(back->driver[1].done);
}

TEST(StateCodecTest, MissingRequiredSectionIsCorruption) {
  core::DetectorConfig config;
  SnapshotState state;
  StampMeta(config, &state);
  auto sections = EncodeState(state);
  for (size_t drop = 0; drop < sections.size(); ++drop) {
    std::vector<Section> partial;
    for (size_t i = 0; i < sections.size(); ++i) {
      if (i != drop) partial.push_back(sections[i]);
    }
    const auto image = EncodeSnapshot(1, partial);
    auto snap = DecodeSnapshot(image.data(), image.size());
    ASSERT_TRUE(snap.ok());
    EXPECT_EQ(DecodeState(*snap).status().code(), StatusCode::kCorruption)
        << "dropped section " << sections[drop].id;
  }
}

TEST(StateCodecTest, TruncatedSectionPayloadIsCorruption) {
  // Cut *inside* a section payload (the container CRC would catch this on
  // disk; here we hand the codec an internally-consistent container whose
  // STREAMS payload lies about its counts).
  core::DetectorConfig config;
  SnapshotState state;
  StampMeta(config, &state);
  auto sections = EncodeState(state);
  for (Section& s : sections) {
    if (s.id != kSectionStreams && s.id != kSectionMatches) continue;
    Section cut = s;
    cut.payload.resize(cut.payload.size() / 2);
    std::vector<Section> doctored;
    for (const Section& orig : sections) {
      doctored.push_back(orig.id == cut.id ? cut : orig);
    }
    const auto image = EncodeSnapshot(1, doctored);
    auto snap = DecodeSnapshot(image.data(), image.size());
    ASSERT_TRUE(snap.ok());
    EXPECT_EQ(DecodeState(*snap).status().code(), StatusCode::kCorruption);
  }
}

TEST(StateCodecTest, HostileCountDoesNotAllocate) {
  // A STREAMS section claiming 2^32-1 streams in a 4-byte payload must be
  // rejected by the count-fits-payload guard before any resize.
  core::DetectorConfig config;
  SnapshotState state;
  StampMeta(config, &state);
  auto sections = EncodeState(state);
  for (Section& s : sections) {
    if (s.id == kSectionStreams || s.id == kSectionMatches) {
      s.payload = {0xff, 0xff, 0xff, 0xff};
    }
  }
  const auto image = EncodeSnapshot(1, sections);
  auto snap = DecodeSnapshot(image.data(), image.size());
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(DecodeState(*snap).status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace vcd::ckpt
