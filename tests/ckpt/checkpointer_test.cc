#include "ckpt/checkpointer.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/config.h"
#include "util/atomic_file.h"
#include "util/faultfx.h"
#include "util/status.h"

namespace vcd::ckpt {
namespace {

class CheckpointerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/vcd_ckpt_XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    faultfx::Injector::Instance().Reset();
    std::string cmd = "rm -rf " + dir_;
    std::system(cmd.c_str());
  }

  SnapshotState MakeState(int next_stream_id) {
    core::DetectorConfig config;
    SnapshotState state;
    StampMeta(config, &state);
    state.next_stream_id = next_stream_id;
    state.query_db = {'V', 'C', 'D', 'Q'};
    return state;
  }

  static bool Exists(const std::string& path) {
    return ::access(path.c_str(), F_OK) == 0;
  }

  std::string dir_;
};

TEST_F(CheckpointerTest, FreshDirectoryStartsAtEpochOne) {
  auto c = Checkpointer::Open(dir_ + "/sub");  // creates the directory
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_EQ(c->next_epoch(), 1u);
  EXPECT_EQ(c->LoadLatest().status().code(), StatusCode::kNotFound);
}

TEST_F(CheckpointerTest, SaveLoadRoundTripAndEpochAdvance) {
  auto c = Checkpointer::Open(dir_);
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c->Save(MakeState(5)).ok());
  EXPECT_EQ(c->next_epoch(), 2u);
  ASSERT_TRUE(c->Save(MakeState(7)).ok());
  EXPECT_EQ(c->next_epoch(), 3u);

  auto state = c->LoadLatest();
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  EXPECT_EQ(state->epoch, 2u);
  EXPECT_EQ(state->next_stream_id, 7);
}

TEST_F(CheckpointerTest, ReopenResumesEpochSequence) {
  {
    auto c = Checkpointer::Open(dir_);
    ASSERT_TRUE(c.ok());
    ASSERT_TRUE(c->Save(MakeState(1)).ok());
    ASSERT_TRUE(c->Save(MakeState(2)).ok());
  }
  auto c = Checkpointer::Open(dir_);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->next_epoch(), 3u);
  auto state = c->LoadLatest();
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state->epoch, 2u);
}

TEST_F(CheckpointerTest, ManifestKeepsLastTwoSnapshots) {
  auto c = Checkpointer::Open(dir_);
  ASSERT_TRUE(c.ok());
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(c->Save(MakeState(i + 1)).ok());
  // Epochs 1 and 2 were dropped from the manifest and unlinked.
  EXPECT_FALSE(Exists(dir_ + "/ckpt-0000000000000001.vck"));
  EXPECT_FALSE(Exists(dir_ + "/ckpt-0000000000000002.vck"));
  EXPECT_TRUE(Exists(dir_ + "/ckpt-0000000000000003.vck"));
  EXPECT_TRUE(Exists(dir_ + "/ckpt-0000000000000004.vck"));
}

TEST_F(CheckpointerTest, CorruptNewestFallsBackToPrevious) {
  auto c = Checkpointer::Open(dir_);
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c->Save(MakeState(10)).ok());
  ASSERT_TRUE(c->Save(MakeState(20)).ok());
  // Flip one payload bit in the newest snapshot — the storage layer lied.
  const std::string newest = dir_ + "/ckpt-0000000000000002.vck";
  std::string image;
  ASSERT_TRUE(util::ReadFileToString(newest, &image).ok());
  image[image.size() / 2] = static_cast<char>(image[image.size() / 2] ^ 0x01);
  {
    auto w = util::AtomicFileWriter::Open(newest);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w->Append(image).ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  auto state = c->LoadLatest();
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  EXPECT_EQ(state->epoch, 1u);
  EXPECT_EQ(state->next_stream_id, 10);
}

TEST_F(CheckpointerTest, TornNewestFallsBackToPrevious) {
  auto c = Checkpointer::Open(dir_);
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c->Save(MakeState(10)).ok());
  ASSERT_TRUE(c->Save(MakeState(20)).ok());
  const std::string newest = dir_ + "/ckpt-0000000000000002.vck";
  std::string image;
  ASSERT_TRUE(util::ReadFileToString(newest, &image).ok());
  image.resize(image.size() / 3);  // torn write: only a prefix survived
  {
    auto w = util::AtomicFileWriter::Open(newest);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w->Append(image).ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  auto state = c->LoadLatest();
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state->epoch, 1u);
}

TEST_F(CheckpointerTest, AllSnapshotsCorruptIsTypedCorruption) {
  auto c = Checkpointer::Open(dir_);
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c->Save(MakeState(1)).ok());
  ASSERT_TRUE(c->Save(MakeState(2)).ok());
  for (const char* name :
       {"ckpt-0000000000000001.vck", "ckpt-0000000000000002.vck"}) {
    auto w = util::AtomicFileWriter::Open(dir_ + "/" + name);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w->Append("garbage").ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  EXPECT_EQ(c->LoadLatest().status().code(), StatusCode::kCorruption);
}

TEST_F(CheckpointerTest, BadManifestHeaderIsCorruption) {
  {
    auto w = util::AtomicFileWriter::Open(dir_ + "/MANIFEST");
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w->Append("NOT-A-MANIFEST\n").ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  EXPECT_EQ(Checkpointer::Open(dir_).status().code(), StatusCode::kCorruption);
}

TEST_F(CheckpointerTest, MalformedManifestLineIsSkipped) {
  auto c = Checkpointer::Open(dir_);
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c->Save(MakeState(42)).ok());
  std::string manifest;
  ASSERT_TRUE(util::ReadFileToString(dir_ + "/MANIFEST", &manifest).ok());
  manifest += "not an entry\n";
  {
    auto w = util::AtomicFileWriter::Open(dir_ + "/MANIFEST");
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w->Append(manifest).ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  auto again = Checkpointer::Open(dir_);
  ASSERT_TRUE(again.ok());
  auto state = again->LoadLatest();
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state->next_stream_id, 42);
}

TEST_F(CheckpointerTest, InjectedWriteFailureDoesNotAdvanceManifest) {
  if (!faultfx::kEnabled) GTEST_SKIP() << "faultfx compiled out";
  auto c = Checkpointer::Open(dir_);
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c->Save(MakeState(10)).ok());
  for (const faultfx::Site site :
       {faultfx::Site::kCkptWriteError, faultfx::Site::kCkptShortWrite,
        faultfx::Site::kCkptRenameError}) {
    faultfx::ScopedFault fault(site, faultfx::Plan{});
    EXPECT_FALSE(c->Save(MakeState(99)).ok()) << faultfx::SiteName(site);
  }
  // None of the failed attempts consumed an epoch or touched the manifest:
  // a restore still sees the last good snapshot.
  auto state = c->LoadLatest();
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state->epoch, 1u);
  EXPECT_EQ(state->next_stream_id, 10);
  faultfx::Injector::Instance().Reset();
  ASSERT_TRUE(c->Save(MakeState(11)).ok());
  auto after = c->LoadLatest();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->epoch, 2u);
}

TEST_F(CheckpointerTest, InjectedCrcCorruptionFallsBackAtRestore) {
  if (!faultfx::kEnabled) GTEST_SKIP() << "faultfx compiled out";
  auto c = Checkpointer::Open(dir_);
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c->Save(MakeState(10)).ok());
  {
    // The second snapshot lands on disk bit-flipped (encode-time injection,
    // keyed by epoch 2) — Save itself cannot tell, exactly like silent
    // storage corruption.
    faultfx::Plan plan;
    plan.key_filter = 2;
    faultfx::ScopedFault fault(faultfx::Site::kCkptCrcCorrupt, plan);
    ASSERT_TRUE(c->Save(MakeState(20)).ok());
  }
  auto state = c->LoadLatest();
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  EXPECT_EQ(state->epoch, 1u);
  EXPECT_EQ(state->next_stream_id, 10);
}

}  // namespace
}  // namespace vcd::ckpt
