/// \file restore_equivalence_test.cc
/// The acceptance bar of the checkpoint/restore subsystem: a run that is
/// interrupted at an arbitrary frame boundary, snapshotted, and resumed on
/// a fresh engine produces *byte-identical* matches — and bit-identical
/// detector statistics (RunningStats accumulators included) — to a run that
/// was never interrupted. Both the serial StreamMonitor and the parallel
/// StreamExecutor are pinned, and the snapshot round-trips through the full
/// on-disk codec (EncodeState → EncodeSnapshot → DecodeSnapshot →
/// DecodeState), not just the in-memory structs.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/snapshot.h"
#include "ckpt/state_codec.h"
#include "core/config.h"
#include "core/monitor.h"
#include "core/query_store.h"
#include "parallel/executor.h"
#include "util/stats.h"
#include "video/partial_decoder.h"

namespace vcd {
namespace {

using core::DetectorConfig;
using core::ParallelConfig;
using core::StreamMatch;
using core::StreamMonitor;
using parallel::StreamExecutor;

DetectorConfig SmallConfig() {
  DetectorConfig c;
  c.K = 64;
  c.window_seconds = 4.0;
  c.delta = 0.6;
  return c;
}

video::DcFrame TinyFrame(int64_t slot, float fill) {
  video::DcFrame f;
  f.blocks_x = 6;
  f.blocks_y = 6;
  f.frame_index = slot * 12;
  f.timestamp = static_cast<double>(slot) / 2.5;
  f.dc.resize(36);
  for (size_t i = 0; i < 36; ++i) {
    f.dc[i] =
        8.0f * 60.0f * std::sin(0.7f * fill + 0.9f * static_cast<float>(i));
  }
  return f;
}

std::vector<video::DcFrame> QueryFrames() {
  std::vector<video::DcFrame> frames;
  for (int i = 0; i < 40; ++i) frames.push_back(TinyFrame(i, 100.0f + i));
  return frames;
}

/// The scenario feed: noise, an embedded copy of the query, more noise.
float FillAt(int round) {
  if (round < 20) return -80.0f + static_cast<float>(round % 5);
  if (round < 60) return 100.0f + static_cast<float>(round - 20);
  return -40.0f + static_cast<float>(round % 7);
}
constexpr int kTotalFrames = 75;

void ExpectSameMatches(const std::vector<StreamMatch>& a,
                       const std::vector<StreamMatch>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].stream_id, b[i].stream_id) << i;
    EXPECT_EQ(a[i].stream_name, b[i].stream_name) << i;
    EXPECT_EQ(a[i].match.query_id, b[i].match.query_id) << i;
    EXPECT_EQ(a[i].match.start_frame, b[i].match.start_frame) << i;
    EXPECT_EQ(a[i].match.end_frame, b[i].match.end_frame) << i;
    EXPECT_EQ(a[i].match.start_time, b[i].match.start_time) << i;
    EXPECT_EQ(a[i].match.end_time, b[i].match.end_time) << i;
    EXPECT_EQ(a[i].match.similarity, b[i].match.similarity) << i;
  }
}

void ExpectSameRaw(const RunningStats& a, const RunningStats& b) {
  const auto ra = a.ToRaw();
  const auto rb = b.ToRaw();
  EXPECT_EQ(ra.n, rb.n);
  EXPECT_EQ(ra.mean, rb.mean);
  EXPECT_EQ(ra.m2, rb.m2);
  EXPECT_EQ(ra.sum, rb.sum);
  EXPECT_EQ(ra.min, rb.min);
  EXPECT_EQ(ra.max, rb.max);
}

void ExpectSameStats(const core::DetectorStats& a, const core::DetectorStats& b) {
  EXPECT_EQ(a.key_frames, b.key_frames);
  EXPECT_EQ(a.windows, b.windows);
  EXPECT_EQ(a.sketch_combines, b.sketch_combines);
  EXPECT_EQ(a.sketch_compares, b.sketch_compares);
  EXPECT_EQ(a.bitsig_ors, b.bitsig_ors);
  EXPECT_EQ(a.bitsig_builds, b.bitsig_builds);
  EXPECT_EQ(a.candidates_pruned, b.candidates_pruned);
  EXPECT_EQ(a.degraded_frames, b.degraded_frames);
  EXPECT_EQ(a.degraded_windows, b.degraded_windows);
  EXPECT_EQ(a.out_of_order_frames, b.out_of_order_frames);
  ExpectSameRaw(a.signatures_per_window, b.signatures_per_window);
  ExpectSameRaw(a.candidates_per_window, b.candidates_per_window);
  ExpectSameRaw(a.pool_slots_per_window, b.pool_slots_per_window);
}

/// Round-trips the in-memory state through the full binary snapshot format.
ckpt::SnapshotState ThroughCodec(const ckpt::SnapshotState& state,
                                 uint64_t epoch) {
  const auto image = ckpt::EncodeSnapshot(epoch, ckpt::EncodeState(state));
  auto snap = ckpt::DecodeSnapshot(image.data(), image.size());
  EXPECT_TRUE(snap.ok()) << snap.status().ToString();
  auto back = ckpt::DecodeState(*snap);
  EXPECT_TRUE(back.ok()) << back.status().ToString();
  return *back;
}

class RestoreEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(RestoreEquivalenceTest, SerialKillRestoreIsByteIdentical) {
  const int cut = GetParam();
  const DetectorConfig config = SmallConfig();
  const auto qframes = QueryFrames();

  auto uninterrupted = StreamMonitor::Create(config).value();
  ASSERT_TRUE(uninterrupted->AddQuery(1, qframes).ok());
  auto sid = uninterrupted->OpenStream("s");
  ASSERT_TRUE(sid.ok());
  for (int i = 0; i < kTotalFrames; ++i) {
    ASSERT_TRUE(
        uninterrupted->ProcessKeyFrame(*sid, TinyFrame(i, FillAt(i))).ok());
  }
  const auto stats_a = uninterrupted->StreamStats(*sid);
  ASSERT_TRUE(stats_a.ok());
  ASSERT_TRUE(uninterrupted->CloseStream(*sid).ok());
  const auto matches_a = uninterrupted->matches();
  ASSERT_FALSE(matches_a.empty()) << "scenario must actually match";

  // Interrupted run: checkpoint at `cut`, crash, restore, resume.
  auto first = StreamMonitor::Create(config).value();
  ASSERT_TRUE(first->AddQuery(1, qframes).ok());
  auto sid_b = first->OpenStream("s");
  ASSERT_TRUE(sid_b.ok());
  ASSERT_EQ(*sid_b, *sid);
  for (int i = 0; i < cut; ++i) {
    ASSERT_TRUE(first->ProcessKeyFrame(*sid_b, TinyFrame(i, FillAt(i))).ok());
  }
  core::MonitorCkpt mc = first->ExportCkpt();

  // Through the binary codec, as a real crash-restart would read it.
  ckpt::SnapshotState state;
  ckpt::StampMeta(config, &state);
  state.next_stream_id = mc.next_stream_id;
  state.streams = mc.streams;
  for (const StreamMatch& m : mc.matches) {
    state.matches.push_back(ckpt::SnapshotMatch{0, m});
  }
  ckpt::SnapshotState decoded = ThroughCodec(state, 1);

  auto resumed = StreamMonitor::Create(config).value();
  ASSERT_TRUE(resumed->AddQuery(1, qframes).ok());
  core::MonitorCkpt mc2;
  mc2.next_stream_id = decoded.next_stream_id;
  mc2.streams = decoded.streams;
  for (const auto& m : decoded.matches) mc2.matches.push_back(m.match);
  ASSERT_TRUE(resumed->RestoreCkpt(mc2).ok());
  for (int i = cut; i < kTotalFrames; ++i) {
    ASSERT_TRUE(resumed->ProcessKeyFrame(*sid_b, TinyFrame(i, FillAt(i))).ok());
  }
  const auto stats_b = resumed->StreamStats(*sid_b);
  ASSERT_TRUE(stats_b.ok());
  ASSERT_TRUE(resumed->CloseStream(*sid_b).ok());

  ExpectSameMatches(matches_a, resumed->matches());
  ExpectSameStats(*stats_a, *stats_b);
}

TEST_P(RestoreEquivalenceTest, ParallelKillRestoreIsByteIdentical) {
  const int cut = GetParam();
  const DetectorConfig config = SmallConfig();
  ParallelConfig pc;
  pc.num_threads = 2;
  const auto qframes = QueryFrames();
  constexpr int kStreams = 3;

  auto run_frames = [&](StreamExecutor* exec, const std::vector<int>& sids,
                        int from, int to) {
    for (int i = from; i < to; ++i) {
      for (size_t s = 0; s < sids.size(); ++s) {
        const float jitter = static_cast<float>(s) * 0.1f;
        ASSERT_TRUE(exec->ProcessKeyFrame(
                            sids[s], TinyFrame(i, FillAt(i) + jitter))
                        .ok());
      }
    }
  };

  auto uninterrupted = StreamExecutor::Create(config, pc).value();
  ASSERT_TRUE(uninterrupted->AddQuery(1, qframes).ok());
  std::vector<int> sids;
  for (int s = 0; s < kStreams; ++s) {
    auto sid = uninterrupted->OpenStream("s" + std::to_string(s));
    ASSERT_TRUE(sid.ok());
    sids.push_back(*sid);
  }
  run_frames(uninterrupted.get(), sids, 0, kTotalFrames);
  for (int sid : sids) ASSERT_TRUE(uninterrupted->CloseStream(sid).ok());
  ASSERT_TRUE(uninterrupted->Drain().ok());
  const auto matches_a = uninterrupted->matches();
  ASSERT_FALSE(matches_a.empty());

  auto first = StreamExecutor::Create(config, pc).value();
  ASSERT_TRUE(first->AddQuery(1, qframes).ok());
  std::vector<int> sids_b;
  for (int s = 0; s < kStreams; ++s) {
    sids_b.push_back(*first->OpenStream("s" + std::to_string(s)));
  }
  ASSERT_EQ(sids_b, sids);
  run_frames(first.get(), sids_b, 0, cut);
  auto ec = first->Checkpoint();
  ASSERT_TRUE(ec.ok()) << ec.status().ToString();

  ckpt::SnapshotState state;
  ckpt::StampMeta(config, &state);
  state.next_stream_id = ec->next_stream_id;
  state.next_seq = ec->next_seq;
  state.streams = ec->streams;
  for (const auto& m : ec->matches) {
    state.matches.push_back(ckpt::SnapshotMatch{m.seq, m.match});
  }
  ckpt::SnapshotState decoded = ThroughCodec(state, 1);

  auto resumed = StreamExecutor::Create(config, pc).value();
  ASSERT_TRUE(resumed->AddQuery(1, qframes).ok());
  parallel::ExecutorCkpt ec2;
  ec2.next_stream_id = decoded.next_stream_id;
  ec2.next_seq = decoded.next_seq;
  ec2.streams = decoded.streams;
  for (const auto& m : decoded.matches) {
    ec2.matches.push_back(parallel::SeqMatch{m.seq, m.match});
  }
  ASSERT_TRUE(resumed->RestoreCkpt(ec2).ok());
  run_frames(resumed.get(), sids_b, cut, kTotalFrames);
  for (int sid : sids_b) ASSERT_TRUE(resumed->CloseStream(sid).ok());
  ASSERT_TRUE(resumed->Drain().ok());

  ExpectSameMatches(matches_a, resumed->matches());
}

TEST_P(RestoreEquivalenceTest, SerialAndParallelSnapshotsInterchange) {
  // Engine-agnostic codec: a snapshot taken by the serial monitor restores
  // onto the parallel executor (and produces the same continuation), since
  // both write the same STREAMS section.
  const int cut = GetParam();
  const DetectorConfig config = SmallConfig();
  const auto qframes = QueryFrames();

  auto serial = StreamMonitor::Create(config).value();
  ASSERT_TRUE(serial->AddQuery(1, qframes).ok());
  auto sid = serial->OpenStream("s");
  ASSERT_TRUE(sid.ok());
  for (int i = 0; i < cut; ++i) {
    ASSERT_TRUE(serial->ProcessKeyFrame(*sid, TinyFrame(i, FillAt(i))).ok());
  }
  core::MonitorCkpt mc = serial->ExportCkpt();
  // Reference continuation on the serial engine itself.
  for (int i = cut; i < kTotalFrames; ++i) {
    ASSERT_TRUE(serial->ProcessKeyFrame(*sid, TinyFrame(i, FillAt(i))).ok());
  }
  ASSERT_TRUE(serial->CloseStream(*sid).ok());

  ParallelConfig pc;
  pc.num_threads = 2;
  auto exec = StreamExecutor::Create(config, pc).value();
  ASSERT_TRUE(exec->AddQuery(1, qframes).ok());
  parallel::ExecutorCkpt ec;
  ec.next_stream_id = mc.next_stream_id;
  ec.streams = mc.streams;
  for (const StreamMatch& m : mc.matches) {
    ec.matches.push_back(parallel::SeqMatch{0, m});
  }
  ASSERT_TRUE(exec->RestoreCkpt(ec).ok());
  for (int i = cut; i < kTotalFrames; ++i) {
    ASSERT_TRUE(exec->ProcessKeyFrame(*sid, TinyFrame(i, FillAt(i))).ok());
  }
  ASSERT_TRUE(exec->CloseStream(*sid).ok());
  ASSERT_TRUE(exec->Drain().ok());
  ExpectSameMatches(serial->matches(), exec->matches());
}

// Cut points: before the copy, mid-copy (candidates live), right at the
// copy's end (matches already emitted), and in the trailing noise.
INSTANTIATE_TEST_SUITE_P(Cuts, RestoreEquivalenceTest,
                         ::testing::Values(7, 33, 61, 70));

}  // namespace
}  // namespace vcd
