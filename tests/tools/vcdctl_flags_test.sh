#!/usr/bin/env bash
# Pins vcdctl monitor's flag validation: malformed --threads/--queue/
# --backpressure/--on-corruption/--watchdog-ms/--push-deadline-ms/--qos*
# values must exit 2 with a usage message BEFORE any file
# I/O happens — the query-db path below does not exist, so reaching the
# loader would fail with a different error and no usage line.
#
# Usage: vcdctl_flags_test.sh <path-to-vcdctl>
set -u

VCDCTL="${1:?usage: $0 <path-to-vcdctl>}"
FAILED=0

expect_flag_error() {
  local desc="$1"
  shift
  local err rc
  err=$("$VCDCTL" "$@" 2>&1 >/dev/null)
  rc=$?
  if [ $rc -ne 2 ]; then
    echo "FAIL: $desc: expected exit 2, got $rc"
    FAILED=1
  fi
  if ! echo "$err" | grep -q "usage: vcdctl monitor"; then
    echo "FAIL: $desc: stderr lacks the usage message:"
    echo "$err"
    FAILED=1
  fi
}

NO_SUCH_DB="/nonexistent/queries.vcdq"
NO_SUCH_STREAM="/nonexistent/stream.vcds"

expect_flag_error "negative --threads" \
  monitor "$NO_SUCH_DB" "$NO_SUCH_STREAM" --threads=-1
expect_flag_error "zero --queue" \
  monitor "$NO_SUCH_DB" "$NO_SUCH_STREAM" --threads=2 --queue=0
expect_flag_error "negative --queue" \
  monitor "$NO_SUCH_DB" "$NO_SUCH_STREAM" --threads=2 --queue=-5
expect_flag_error "bad --backpressure" \
  monitor "$NO_SUCH_DB" "$NO_SUCH_STREAM" --threads=2 --backpressure=banana
expect_flag_error "missing stream operand" \
  monitor "$NO_SUCH_DB"
expect_flag_error "bad --on-corruption" \
  monitor "$NO_SUCH_DB" "$NO_SUCH_STREAM" --on-corruption=banana
expect_flag_error "negative --watchdog-ms" \
  monitor "$NO_SUCH_DB" "$NO_SUCH_STREAM" --watchdog-ms=-1
expect_flag_error "unknown --kernel" \
  monitor "$NO_SUCH_DB" "$NO_SUCH_STREAM" --kernel=banana
expect_flag_error "negative --checkpoint-interval-ms" \
  monitor "$NO_SUCH_DB" "$NO_SUCH_STREAM" \
  --checkpoint-dir=/nonexistent/ckpt --checkpoint-interval-ms=-1
expect_flag_error "--checkpoint-interval-ms without --checkpoint-dir" \
  monitor "$NO_SUCH_DB" "$NO_SUCH_STREAM" --checkpoint-interval-ms=500
expect_flag_error "--restore without --checkpoint-dir" \
  monitor "$NO_SUCH_DB" "$NO_SUCH_STREAM" --restore
expect_flag_error "negative --throttle-ms" \
  monitor "$NO_SUCH_DB" "$NO_SUCH_STREAM" --throttle-ms=-1
expect_flag_error "negative --push-deadline-ms" \
  monitor "$NO_SUCH_DB" "$NO_SUCH_STREAM" --threads=2 --push-deadline-ms=-1
expect_flag_error "--push-deadline-ms without --threads" \
  monitor "$NO_SUCH_DB" "$NO_SUCH_STREAM" --push-deadline-ms=100
expect_flag_error "--qos without --threads" \
  monitor "$NO_SUCH_DB" "$NO_SUCH_STREAM" --qos
expect_flag_error "--qos-tick-ms without --qos" \
  monitor "$NO_SUCH_DB" "$NO_SUCH_STREAM" --threads=2 --qos-tick-ms=50
expect_flag_error "--priority-map without --qos" \
  monitor "$NO_SUCH_DB" "$NO_SUCH_STREAM" --threads=2 --priority-map=1=high
expect_flag_error "--degrade-policy without --qos" \
  monitor "$NO_SUCH_DB" "$NO_SUCH_STREAM" --threads=2 --degrade-policy=probe=2
expect_flag_error "malformed --priority-map entry" \
  monitor "$NO_SUCH_DB" "$NO_SUCH_STREAM" --threads=2 --priority-map=banana --qos
expect_flag_error "out-of-range --priority-map index" \
  monitor "$NO_SUCH_DB" "$NO_SUCH_STREAM" --threads=2 --priority-map=2=high --qos
expect_flag_error "bad --priority-map class" \
  monitor "$NO_SUCH_DB" "$NO_SUCH_STREAM" --threads=2 --priority-map=1=urgent --qos
expect_flag_error "bad --degrade-policy key" \
  monitor "$NO_SUCH_DB" "$NO_SUCH_STREAM" --threads=2 --degrade-policy=banana=1 --qos
expect_flag_error "zero --degrade-policy probe" \
  monitor "$NO_SUCH_DB" "$NO_SUCH_STREAM" --threads=2 --degrade-policy=probe=0 --qos
expect_flag_error "negative --qos-tick-ms" \
  monitor "$NO_SUCH_DB" "$NO_SUCH_STREAM" --threads=2 --qos-tick-ms=-1 --qos

# A --kernel the CPU/build cannot run must also be a usage error (exit 2),
# not a crash or silent fallback. neon is never supported on x86 hosts and
# every other name stays valid, so probe via `vcdctl kernels`.
if ! "$VCDCTL" kernels | grep -q "^neon .*yes"; then
  expect_flag_error "unsupported --kernel" \
    monitor "$NO_SUCH_DB" "$NO_SUCH_STREAM" --kernel=neon
fi

# A supported --kernel must get PAST flag validation (scalar is always
# supported): loader failure, no usage line.
err=$("$VCDCTL" monitor "$NO_SUCH_DB" "$NO_SUCH_STREAM" --kernel=scalar \
  2>&1 >/dev/null)
rc=$?
if [ $rc -eq 0 ] || [ $rc -eq 2 ]; then
  echo "FAIL: --kernel=scalar + missing db: expected loader failure, got rc=$rc"
  FAILED=1
fi
if echo "$err" | grep -q "usage: vcdctl monitor"; then
  echo "FAIL: --kernel=scalar + missing db printed the usage message"
  FAILED=1
fi

# A fully valid QoS flag set must also get PAST validation: loader failure,
# no usage line.
err=$("$VCDCTL" monitor "$NO_SUCH_DB" "$NO_SUCH_STREAM" --threads=2 \
  --push-deadline-ms=250 --qos-tick-ms=50 --priority-map=1=high \
  --degrade-policy=probe=2,cap=16,nogeo --qos 2>&1 >/dev/null)
rc=$?
if [ $rc -eq 0 ] || [ $rc -eq 2 ]; then
  echo "FAIL: valid qos flags + missing db: expected loader failure, got rc=$rc"
  FAILED=1
fi
if echo "$err" | grep -q "usage: vcdctl monitor"; then
  echo "FAIL: valid qos flags + missing db printed the usage message"
  FAILED=1
fi

# Valid flags with a missing db must get PAST flag validation: non-zero exit
# from the loader, but no usage message (it is not a usage error).
err=$("$VCDCTL" monitor "$NO_SUCH_DB" "$NO_SUCH_STREAM" --threads=2 \
  --on-corruption=quarantine --watchdog-ms=250 2>&1 >/dev/null)
rc=$?
if [ $rc -eq 0 ] || [ $rc -eq 2 ]; then
  echo "FAIL: valid flags + missing db: expected a loader failure, got rc=$rc"
  FAILED=1
fi
if echo "$err" | grep -q "usage: vcdctl monitor"; then
  echo "FAIL: valid flags + missing db printed the usage message"
  FAILED=1
fi

if [ $FAILED -ne 0 ]; then
  exit 1
fi
echo "OK: vcdctl monitor flag validation behaves as pinned"
exit 0
