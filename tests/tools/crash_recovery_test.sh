#!/usr/bin/env bash
# Crash-recovery contract of `vcdctl monitor --checkpoint-dir` (DESIGN.md
# §16): SIGKILL the monitor at randomized (but seeded) points mid-ingest,
# restart with --restore, and require the resumed run's match output to be
# byte-identical to an uninterrupted run. Also pins the graceful-drain path:
# SIGTERM stops intake, takes a final checkpoint, and exits 0; a restore
# then completes the job with identical matches.
#
# Usage: crash_recovery_test.sh <path-to-vcdctl> [seed]
set -u

VCDCTL="${1:?usage: $0 <path-to-vcdctl> [seed]}"
SEED="${2:-${CRASH_RECOVERY_SEED:-20260809}}"
FAILED=0

WORK=$(mktemp -d /tmp/vcd_crash_recovery_XXXXXX)
trap 'rm -rf "$WORK"' EXIT

# Deterministic kill-delay sequence from the seed (no $RANDOM: two runs with
# the same seed must kill at the same wall-clock points).
RAND_STATE=$SEED
next_rand() {
  RAND_STATE=$(( (RAND_STATE * 1103515245 + 12345) % 2147483648 ))
  echo $(( RAND_STATE % $1 ))
}

# --- fixture: a synthetic stream that is its own query (self-copy) --------
"$VCDCTL" generate --out="$WORK/clip.y4m" --seconds=10 --seed=7 \
  --w=176 --h=144 >/dev/null || { echo "FAIL: generate"; exit 1; }
"$VCDCTL" encode "$WORK/clip.y4m" "$WORK/stream.vcds" >/dev/null \
  || { echo "FAIL: encode"; exit 1; }
"$VCDCTL" build-queries "$WORK/q.vcdq" 1="$WORK/stream.vcds" --k=128 \
  >/dev/null || { echo "FAIL: build-queries"; exit 1; }

# --- reference: uninterrupted run (no checkpointing at all) ---------------
"$VCDCTL" monitor "$WORK/q.vcdq" "$WORK/stream.vcds" > "$WORK/ref.out" \
  || { echo "FAIL: reference monitor run"; exit 1; }
grep '^MATCH' "$WORK/ref.out" > "$WORK/ref.matches"
if [ ! -s "$WORK/ref.matches" ]; then
  echo "FAIL: reference run produced no matches (fixture broken)"
  exit 1
fi

# A checkpointing-but-uninterrupted run must change nothing. Throttled so
# several interval checkpoints actually land (the torn-snapshot stage below
# needs at least two manifest entries to fall back across).
"$VCDCTL" monitor "$WORK/q.vcdq" "$WORK/stream.vcds" \
  --checkpoint-dir="$WORK/ckpt-clean" --checkpoint-interval-ms=30 \
  --throttle-ms=10 > "$WORK/clean.out" \
  || { echo "FAIL: checkpointing run"; exit 1; }
grep '^MATCH' "$WORK/clean.out" > "$WORK/clean.matches"
if ! diff -u "$WORK/ref.matches" "$WORK/clean.matches"; then
  echo "FAIL: checkpointing perturbed the match output"
  FAILED=1
fi

# --- SIGKILL at randomized points, then restore ---------------------------
for round in 1 2 3; do
  DIR="$WORK/ckpt-$round"
  OUT="$WORK/round-$round.out"
  "$VCDCTL" monitor "$WORK/q.vcdq" "$WORK/stream.vcds" \
    --checkpoint-dir="$DIR" --checkpoint-interval-ms=30 --throttle-ms=15 \
    > "$OUT" 2>/dev/null &
  PID=$!
  DELAY_MS=$(( 80 + $(next_rand 400) ))
  sleep "$(awk "BEGIN{print $DELAY_MS/1000}")"
  kill -9 "$PID" 2>/dev/null
  wait "$PID" 2>/dev/null
  RC=$?
  if [ $RC -ne 137 ]; then
    # The run finished before the kill landed; the final checkpoint must
    # still restore to the complete match list below.
    echo "note: round $round: monitor finished before SIGKILL (rc=$RC)"
  fi
  "$VCDCTL" monitor "$WORK/q.vcdq" "$WORK/stream.vcds" \
    --checkpoint-dir="$DIR" --restore > "$WORK/resumed-$round.out" \
    || { echo "FAIL: round $round: --restore run failed"; FAILED=1; continue; }
  if ! grep -q '^restored checkpoint epoch' "$WORK/resumed-$round.out"; then
    echo "FAIL: round $round: restore did not report a loaded snapshot"
    FAILED=1
  fi
  grep '^MATCH' "$WORK/resumed-$round.out" > "$WORK/resumed-$round.matches"
  if ! diff -u "$WORK/ref.matches" "$WORK/resumed-$round.matches"; then
    echo "FAIL: round $round (kill after ${DELAY_MS}ms, seed $SEED):" \
         "resumed matches differ from the uninterrupted run"
    FAILED=1
  fi
done

# --- graceful drain: SIGTERM → final checkpoint → exit 0 → restore --------
DIR="$WORK/ckpt-drain"
"$VCDCTL" monitor "$WORK/q.vcdq" "$WORK/stream.vcds" \
  --checkpoint-dir="$DIR" --throttle-ms=15 > "$WORK/drain.out" 2>/dev/null &
PID=$!
sleep 0.2
kill -TERM "$PID" 2>/dev/null
wait "$PID"
RC=$?
if [ $RC -ne 0 ]; then
  echo "FAIL: drain: expected exit 0 after SIGTERM, got $RC"
  FAILED=1
fi
if ! grep -q 'drain requested' "$WORK/drain.out"; then
  # The run may have finished before the signal; that is not a drain test.
  if ! grep -q 'matches total' "$WORK/drain.out"; then
    echo "FAIL: drain: neither drain message nor completion in output:"
    cat "$WORK/drain.out"
    FAILED=1
  else
    echo "note: drain round finished before SIGTERM landed"
  fi
fi
"$VCDCTL" monitor "$WORK/q.vcdq" "$WORK/stream.vcds" \
  --checkpoint-dir="$DIR" --restore > "$WORK/drain-resumed.out" \
  || { echo "FAIL: restore after drain failed"; FAILED=1; }
grep '^MATCH' "$WORK/drain-resumed.out" > "$WORK/drain-resumed.matches"
if ! diff -u "$WORK/ref.matches" "$WORK/drain-resumed.matches"; then
  echo "FAIL: drain+restore matches differ from the uninterrupted run"
  FAILED=1
fi

# --- torn-manifest resilience: corrupt the newest snapshot ----------------
DIR="$WORK/ckpt-clean"
NEWEST=$(tail -n 1 "$DIR/MANIFEST" | awk '{print $2}')
if [ -n "$NEWEST" ] && [ -f "$DIR/$NEWEST" ]; then
  SIZE=$(wc -c < "$DIR/$NEWEST")
  head -c $(( SIZE / 2 )) "$DIR/$NEWEST" > "$DIR/$NEWEST.torn" &&
    mv "$DIR/$NEWEST.torn" "$DIR/$NEWEST"
  "$VCDCTL" monitor "$WORK/q.vcdq" "$WORK/stream.vcds" \
    --checkpoint-dir="$DIR" --restore > "$WORK/torn.out" 2> "$WORK/torn.err"
  RC=$?
  if [ $RC -ne 0 ]; then
    echo "FAIL: torn newest snapshot: restore crashed (rc=$RC) instead of" \
         "falling back to the previous manifest entry"
    cat "$WORK/torn.err"
    FAILED=1
  fi
  if ! grep -q 'unreadable snapshot' "$WORK/torn.err"; then
    echo "FAIL: torn snapshot fallback did not log a warning"
    FAILED=1
  fi
  grep '^MATCH' "$WORK/torn.out" > "$WORK/torn.matches"
  if ! diff -u "$WORK/ref.matches" "$WORK/torn.matches"; then
    echo "FAIL: fallback restore matches differ from the uninterrupted run"
    FAILED=1
  fi
else
  echo "FAIL: no manifest entry to corrupt in $DIR"
  FAILED=1
fi

if [ $FAILED -ne 0 ]; then
  exit 1
fi
echo "OK: kill-restore equivalence, graceful drain and torn-snapshot fallback hold (seed $SEED)"
exit 0
