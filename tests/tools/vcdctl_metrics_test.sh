#!/usr/bin/env bash
# Pins the vcdctl metrics CLI surface:
#   - `vcdctl metrics` exits 0 and emits a well-formed JSON document;
#   - `vcdctl metrics --format=prom` emits Prometheus exposition text;
#   - a bad --format exits 2 with the metrics usage line;
#   - `vcdctl monitor` validates --metrics-interval-ms (and its dependency
#     on --metrics-out) BEFORE any file I/O, exit 2 + usage, matching the
#     contract vcdctl_flags_test.sh pins for the other monitor flags.
#
# Usage: vcdctl_metrics_test.sh <path-to-vcdctl>
set -u

VCDCTL="${1:?usage: $0 <path-to-vcdctl>}"
FAILED=0

# --- one-shot `vcdctl metrics` -------------------------------------------

out=$("$VCDCTL" metrics)
rc=$?
if [ $rc -ne 0 ]; then
  echo "FAIL: vcdctl metrics: expected exit 0, got $rc"
  FAILED=1
fi
if ! echo "$out" | grep -q '"metrics": \['; then
  echo "FAIL: vcdctl metrics: output is not the JSON metrics document:"
  echo "$out"
  FAILED=1
fi
# The faultfx gauges are registered (zeroed when compiled out) on every
# dump, so the document is never empty.
if ! echo "$out" | grep -q '"vcd_faultfx_hits"'; then
  echo "FAIL: vcdctl metrics: faultfx gauge series missing:"
  echo "$out"
  FAILED=1
fi

out=$("$VCDCTL" metrics --format=prom)
rc=$?
if [ $rc -ne 0 ]; then
  echo "FAIL: vcdctl metrics --format=prom: expected exit 0, got $rc"
  FAILED=1
fi
if ! echo "$out" | grep -q '^# TYPE vcd_faultfx_hits gauge$'; then
  echo "FAIL: vcdctl metrics --format=prom: no TYPE header:"
  echo "$out"
  FAILED=1
fi

err=$("$VCDCTL" metrics --format=banana 2>&1 >/dev/null)
rc=$?
if [ $rc -ne 2 ]; then
  echo "FAIL: bad --format: expected exit 2, got $rc"
  FAILED=1
fi
if ! echo "$err" | grep -q "usage: vcdctl metrics"; then
  echo "FAIL: bad --format: stderr lacks the usage message:"
  echo "$err"
  FAILED=1
fi

# --- monitor metrics-flag validation (before any file I/O) ----------------

NO_SUCH_DB="/nonexistent/queries.vcdq"
NO_SUCH_STREAM="/nonexistent/stream.vcds"

expect_monitor_flag_error() {
  local desc="$1"
  shift
  local err rc
  err=$("$VCDCTL" "$@" 2>&1 >/dev/null)
  rc=$?
  if [ $rc -ne 2 ]; then
    echo "FAIL: $desc: expected exit 2, got $rc"
    FAILED=1
  fi
  if ! echo "$err" | grep -q "usage: vcdctl monitor"; then
    echo "FAIL: $desc: stderr lacks the usage message:"
    echo "$err"
    FAILED=1
  fi
}

expect_monitor_flag_error "negative --metrics-interval-ms" \
  monitor "$NO_SUCH_DB" "$NO_SUCH_STREAM" --metrics-interval-ms=-100
expect_monitor_flag_error "interval without --metrics-out" \
  monitor "$NO_SUCH_DB" "$NO_SUCH_STREAM" --metrics-interval-ms=500

# Valid metrics flags with a missing db must get PAST validation: loader
# failure, not a usage error.
err=$("$VCDCTL" monitor "$NO_SUCH_DB" "$NO_SUCH_STREAM" \
  --metrics-out=/dev/null --metrics-interval-ms=500 2>&1 >/dev/null)
rc=$?
if [ $rc -eq 0 ] || [ $rc -eq 2 ]; then
  echo "FAIL: valid metrics flags + missing db: expected loader failure, got rc=$rc"
  FAILED=1
fi
if echo "$err" | grep -q "usage: vcdctl monitor"; then
  echo "FAIL: valid metrics flags + missing db printed the usage message"
  FAILED=1
fi

if [ $FAILED -ne 0 ]; then
  exit 1
fi
echo "OK: vcdctl metrics CLI behaves as pinned"
exit 0
