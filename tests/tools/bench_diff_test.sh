#!/usr/bin/env bash
# Pins tools/bench_diff.py's contract: a self-compare passes, a doctored
# windows/sec regression fails with exit 1 (both absolute and --ratio
# modes), a lost pooled_alloc_free meta fails even when every rate improved,
# and malformed invocations exit 2.
#
# Usage: bench_diff_test.sh <path-to-bench_diff.py> <baseline-json>
set -u

DIFF="${1:?usage: $0 <bench_diff.py> <baseline.json>}"
BASELINE="${2:?usage: $0 <bench_diff.py> <baseline.json>}"
PY="${PYTHON:-python3}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
FAILED=0

check_rc() {
  local desc="$1" want="$2"
  shift 2
  "$PY" "$DIFF" "$@" > "$TMP/out.log" 2>&1
  local rc=$?
  if [ "$rc" -ne "$want" ]; then
    echo "FAIL: $desc: expected exit $want, got $rc"
    cat "$TMP/out.log"
    FAILED=1
  fi
}

# Self-compare: identical documents regress nothing, in either mode.
check_rc "self-compare absolute" 0 "$BASELINE" "$BASELINE"
check_rc "self-compare ratio" 0 "$BASELINE" "$BASELINE" --ratio

# Doctor a 50% windows/sec drop into every pooled row: fails the default
# 10% absolute gate and the ratio gate (scalar rows untouched, so the
# pooled/scalar speedup halves too).
"$PY" - "$BASELINE" "$TMP/slow.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
for row in doc["rows"]:
    if row.get("pooled"):
        row["windows_per_sec"] *= 0.5
json.dump(doc, open(sys.argv[2], "w"))
EOF
check_rc "pooled 2x slowdown, absolute" 1 "$BASELINE" "$TMP/slow.json"
check_rc "pooled 2x slowdown, ratio" 1 "$BASELINE" "$TMP/slow.json" --ratio
# A loose-enough threshold must tolerate the same drop.
check_rc "slowdown within threshold" 0 "$BASELINE" "$TMP/slow.json" \
  --ratio --max-regress=0.75

# Losing the zero-allocation contract fails even with better numbers.
"$PY" - "$BASELINE" "$TMP/leaky.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
for row in doc["rows"]:
    row["windows_per_sec"] *= 2.0
doc.setdefault("meta", {})["pooled_alloc_free"] = False
json.dump(doc, open(sys.argv[2], "w"))
EOF
check_rc "pooled_alloc_free lost" 1 "$BASELINE" "$TMP/leaky.json"
check_rc "pooled_alloc_free lost, ratio" 1 "$BASELINE" "$TMP/leaky.json" --ratio

# Dropping the checkpoint_pause_ms measurement fails in both modes; a
# blown-up pause fails the absolute gate but is not compared across
# machines (--ratio), where only presence is required.
"$PY" - "$BASELINE" "$TMP/nopause.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
doc.setdefault("meta", {}).pop("checkpoint_pause_ms", None)
json.dump(doc, open(sys.argv[2], "w"))
EOF
check_rc "checkpoint_pause_ms lost" 1 "$BASELINE" "$TMP/nopause.json"
check_rc "checkpoint_pause_ms lost, ratio" 1 "$BASELINE" "$TMP/nopause.json" \
  --ratio
# A baseline without the meta never demands it (pre-metric baselines).
check_rc "old baseline, no pause meta" 0 "$TMP/nopause.json" "$TMP/nopause.json"
"$PY" - "$BASELINE" "$TMP/slowpause.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
meta = doc.setdefault("meta", {})
meta["checkpoint_pause_ms"] = meta.get("checkpoint_pause_ms", 1.0) * 10 + 10
json.dump(doc, open(sys.argv[2], "w"))
EOF
check_rc "10x checkpoint pause, absolute" 1 "$BASELINE" "$TMP/slowpause.json"
check_rc "10x checkpoint pause, ratio (ungated)" 0 "$BASELINE" \
  "$TMP/slowpause.json" --ratio

# Dropping the qos_governor_overhead_pct measurement fails in both modes;
# blowing its fixed 1% budget fails in both modes too (the percentage is
# already machine-relative, so --ratio gates it as well).
"$PY" - "$BASELINE" "$TMP/noqos.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
doc.setdefault("meta", {}).pop("qos_governor_overhead_pct", None)
json.dump(doc, open(sys.argv[2], "w"))
EOF
check_rc "qos overhead lost" 1 "$BASELINE" "$TMP/noqos.json"
check_rc "qos overhead lost, ratio" 1 "$BASELINE" "$TMP/noqos.json" --ratio
# A baseline without the meta never demands it (pre-metric baselines).
check_rc "old baseline, no qos meta" 0 "$TMP/noqos.json" "$TMP/noqos.json"
"$PY" - "$BASELINE" "$TMP/slowqos.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
doc.setdefault("meta", {})["qos_governor_overhead_pct"] = 3.5
json.dump(doc, open(sys.argv[2], "w"))
EOF
check_rc "qos overhead over budget, absolute" 1 "$BASELINE" "$TMP/slowqos.json"
check_rc "qos overhead over budget, ratio" 1 "$BASELINE" "$TMP/slowqos.json" \
  --ratio

# Rows present on only one side are reported but never fail.
"$PY" - "$BASELINE" "$TMP/fewer.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
doc["rows"] = [r for r in doc["rows"] if r.get("K") != 256]
json.dump(doc, open(sys.argv[2], "w"))
EOF
check_rc "baseline-only rows" 0 "$BASELINE" "$TMP/fewer.json"
check_rc "current-only rows" 0 "$TMP/fewer.json" "$BASELINE"

# Usage errors: wrong arity, unknown flag, malformed threshold, not-a-bench
# document, unreadable path.
check_rc "no args" 2
check_rc "one arg" 2 "$BASELINE"
check_rc "unknown flag" 2 "$BASELINE" "$BASELINE" --frobnicate
check_rc "bad threshold" 2 "$BASELINE" "$BASELINE" --max-regress=banana
echo '{"bench":"other"}' > "$TMP/other.json"
check_rc "not a hotpath doc" 2 "$TMP/other.json" "$BASELINE"
check_rc "missing file" 2 "$TMP/nonexistent.json" "$BASELINE"

if [ $FAILED -ne 0 ]; then
  exit 1
fi
echo "OK: bench_diff regression gate behaves as pinned"
exit 0
