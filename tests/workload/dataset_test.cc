#include "workload/dataset.h"

#include <gtest/gtest.h>

#include <set>

#include "features/fingerprint.h"
#include "sketch/jaccard.h"

namespace vcd::workload {
namespace {

DatasetOptions SmallOptions() {
  DatasetOptions o;
  o.num_shorts = 4;
  o.min_short_seconds = 20;
  o.max_short_seconds = 40;
  o.total_seconds = 600;
  o.seed = 11;
  return o;
}

TEST(DatasetOptionsTest, Validation) {
  EXPECT_TRUE(SmallOptions().Validate().ok());
  DatasetOptions o = SmallOptions();
  o.num_shorts = 0;
  EXPECT_FALSE(o.Validate().ok());
  o = SmallOptions();
  o.total_seconds = 100;  // 4 shorts × up to 40 s do not fit
  EXPECT_FALSE(o.Validate().ok());
  o = SmallOptions();
  o.min_short_seconds = 50;
  o.max_short_seconds = 40;
  EXPECT_FALSE(o.Validate().ok());
  o = SmallOptions();
  o.fps = 0;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(DatasetOptionsTest, ScaledShrinksStreamAndShorts) {
  DatasetOptions o;  // paper scale: 200 shorts, 12 h
  DatasetOptions s = o.Scaled(0.1);
  EXPECT_EQ(s.num_shorts, 20);
  EXPECT_DOUBLE_EQ(s.total_seconds, o.total_seconds * 0.1);
  EXPECT_DOUBLE_EQ(s.min_short_seconds, o.min_short_seconds);
}

TEST(DatasetTest, BuildDeterministic) {
  auto a = Dataset::Build(SmallOptions()).value();
  auto b = Dataset::Build(SmallOptions()).value();
  ASSERT_EQ(a.num_shorts(), b.num_shorts());
  for (int i = 0; i < a.num_shorts(); ++i) {
    EXPECT_EQ(a.query_spec(i).content_seed, b.query_spec(i).content_seed);
    EXPECT_EQ(a.query_spec(i).duration_seconds, b.query_spec(i).duration_seconds);
  }
}

TEST(DatasetTest, ShortDurationsInRange) {
  auto ds = Dataset::Build(SmallOptions()).value();
  for (int i = 0; i < ds.num_shorts(); ++i) {
    EXPECT_GE(ds.query_spec(i).duration_seconds, 20.0);
    EXPECT_LE(ds.query_spec(i).duration_seconds, 40.0);
  }
}

TEST(DatasetTest, QueryOnlyQueriesExist) {
  DatasetOptions o = SmallOptions();
  o.num_query_only = 2;
  auto ds = Dataset::Build(o).value();
  EXPECT_EQ(ds.num_shorts(), 4);
  EXPECT_EQ(ds.num_queries(), 6);
  EXPECT_EQ(ds.query_spec(5).id, 6);
}

TEST(DatasetTest, QueryKeyFramesShapeAndTiming) {
  auto ds = Dataset::Build(SmallOptions()).value();
  auto frames = ds.QueryKeyFrames(0);
  ASSERT_FALSE(frames.empty());
  // One key frame per GOP at 29.97 fps.
  EXPECT_NEAR(static_cast<double>(frames.size()),
              ds.query_spec(0).duration_seconds * 29.97 / 12.0, 2.0);
  EXPECT_EQ(frames[0].blocks_x, 44);
  EXPECT_EQ(frames[0].blocks_y, 30);
  EXPECT_NEAR(frames[1].timestamp - frames[0].timestamp, 12.0 / 29.97, 1e-6);
}

TEST(DatasetTest, StreamTruthMatchesInsertions) {
  auto ds = Dataset::Build(SmallOptions()).value();
  StreamData s = ds.BuildStream(StreamVariant::kVS1);
  EXPECT_EQ(s.truth.size(), 4u);
  std::set<int> ids;
  for (const auto& g : s.truth) {
    ids.insert(g.query_id);
    EXPECT_GE(g.begin_frame, 0);
    EXPECT_LT(g.end_frame, s.total_frames);
    EXPECT_LT(g.begin_frame, g.end_frame);
  }
  EXPECT_EQ(ids, (std::set<int>{1, 2, 3, 4}));
}

TEST(DatasetTest, TruthIntervalsDoNotOverlap) {
  auto ds = Dataset::Build(SmallOptions()).value();
  StreamData s = ds.BuildStream(StreamVariant::kVS2);
  auto truth = s.truth;
  std::sort(truth.begin(), truth.end(),
            [](const auto& a, const auto& b) { return a.begin_frame < b.begin_frame; });
  for (size_t i = 1; i < truth.size(); ++i) {
    EXPECT_GT(truth[i].begin_frame, truth[i - 1].end_frame);
  }
}

TEST(DatasetTest, StreamDurationMatchesOptions) {
  auto ds = Dataset::Build(SmallOptions()).value();
  StreamData s = ds.BuildStream(StreamVariant::kVS1);
  EXPECT_NEAR(s.DurationSeconds(), 600.0, 2.0);
  // Key frames cover the stream at the GOP cadence.
  EXPECT_NEAR(static_cast<double>(s.key_frames.size()),
              600.0 * 29.97 / 12.0, 5.0);
}

TEST(DatasetTest, StreamDeterministic) {
  auto ds = Dataset::Build(SmallOptions()).value();
  StreamData a = ds.BuildStream(StreamVariant::kVS2);
  StreamData b = ds.BuildStream(StreamVariant::kVS2);
  ASSERT_EQ(a.key_frames.size(), b.key_frames.size());
  for (size_t i = 0; i < a.key_frames.size(); i += 37) {
    EXPECT_EQ(a.key_frames[i].dc, b.key_frames[i].dc) << "key frame " << i;
  }
}

TEST(DatasetTest, Vs1CopyMatchesQueryCells) {
  // The inserted VS1 copy must have near-identical cell-id sets to the
  // subscribed query — that is what makes it a copy.
  auto ds = Dataset::Build(SmallOptions()).value();
  StreamData s = ds.BuildStream(StreamVariant::kVS1);
  auto fp = features::FrameFingerprinter::Create(features::FingerprintOptions()).value();
  for (int qi = 0; qi < ds.num_shorts(); ++qi) {
    const auto& g = s.truth[static_cast<size_t>(0)];
    // Find this query's truth entry.
    const core::GroundTruthEntry* entry = nullptr;
    for (const auto& t : s.truth) {
      if (t.query_id == ds.query_spec(qi).id) entry = &t;
    }
    ASSERT_NE(entry, nullptr);
    (void)g;
    std::vector<features::CellId> stream_cells;
    for (const auto& f : s.key_frames) {
      if (f.frame_index >= entry->begin_frame && f.frame_index <= entry->end_frame) {
        stream_cells.push_back(fp.Fingerprint(f));
      }
    }
    auto query_cells = fp.FingerprintSequence(ds.QueryKeyFrames(qi));
    const double sim = sketch::JaccardSimilarity(stream_cells, query_cells);
    EXPECT_GT(sim, 0.75) << "query " << qi + 1;
  }
}

TEST(DatasetTest, Vs2CopyStillOverlapsButLess) {
  auto ds = Dataset::Build(SmallOptions()).value();
  StreamData s1 = ds.BuildStream(StreamVariant::kVS1);
  StreamData s2 = ds.BuildStream(StreamVariant::kVS2);
  auto fp = features::FrameFingerprinter::Create(features::FingerprintOptions()).value();
  double sim1 = 0, sim2 = 0;
  for (int qi = 0; qi < ds.num_shorts(); ++qi) {
    auto query_cells = fp.FingerprintSequence(ds.QueryKeyFrames(qi));
    auto collect = [&](const StreamData& s) {
      std::vector<features::CellId> cells;
      for (const auto& t : s.truth) {
        if (t.query_id != ds.query_spec(qi).id) continue;
        for (const auto& f : s.key_frames) {
          if (f.frame_index >= t.begin_frame && f.frame_index <= t.end_frame) {
            cells.push_back(fp.Fingerprint(f));
          }
        }
      }
      return cells;
    };
    sim1 += sketch::JaccardSimilarity(collect(s1), query_cells);
    sim2 += sketch::JaccardSimilarity(collect(s2), query_cells);
  }
  sim1 /= ds.num_shorts();
  sim2 /= ds.num_shorts();
  EXPECT_GT(sim1, sim2);   // edits cost some fidelity...
  EXPECT_GT(sim2, 0.5);    // ...but the copy remains recognizable.
}

TEST(DatasetTest, EditedQueryKeyFramesAtPalRate) {
  auto ds = Dataset::Build(SmallOptions()).value();
  auto edited = ds.EditedQueryKeyFrames(0);
  ASSERT_GT(edited.size(), 2u);
  // PAL 25 fps, GOP 12 → 12/25 s between key frames.
  EXPECT_NEAR(edited[1].timestamp - edited[0].timestamp, 12.0 / 25.0, 1e-6);
}

TEST(DatasetTest, EditSpecsWithinConfiguredRanges) {
  auto ds = Dataset::Build(SmallOptions()).value();
  const DatasetOptions& o = ds.options();
  for (int qi = 0; qi < ds.num_queries(); ++qi) {
    const EditSpec& e = ds.edit_spec(qi);
    EXPECT_LE(std::abs(e.brightness_delta), o.vs2_brightness_max);
    EXPECT_GE(std::abs(e.brightness_delta), 0.4 * o.vs2_brightness_max - 1e-9);
    EXPECT_GE(e.contrast_gain, 1.0 - o.vs2_contrast_spread);
    EXPECT_LE(e.contrast_gain, 1.0 + o.vs2_contrast_spread);
    EXPECT_GT(e.noise_sigma, 0.0);
    EXPECT_LE(e.noise_sigma, o.vs2_noise_sigma_max);
    EXPECT_DOUBLE_EQ(e.source_fps, 25.0);
    EXPECT_GE(e.reorder_segment_seconds, o.vs2_reorder_min_seconds);
    EXPECT_LE(e.reorder_segment_seconds, o.vs2_reorder_max_seconds);
  }
}


TEST(DatasetTest, DistinctContentRegime) {
  DatasetOptions shared = SmallOptions();
  DatasetOptions distinct = SmallOptions();
  distinct.distinct_content = true;
  auto ds_s = Dataset::Build(shared).value();
  auto ds_d = Dataset::Build(distinct).value();
  auto fp = features::FrameFingerprinter::Create(features::FingerprintOptions()).value();
  // Cross-video cell overlap must be lower in the distinct regime.
  auto cross_overlap = [&](const Dataset& ds) {
    auto a = sketch::CellIdSet::FromSequence(
        fp.FingerprintSequence(ds.QueryKeyFrames(0)));
    auto b = sketch::CellIdSet::FromSequence(
        fp.FingerprintSequence(ds.QueryKeyFrames(1)));
    return a.Jaccard(b);
  };
  EXPECT_LT(cross_overlap(ds_d), cross_overlap(ds_s) + 1e-9);
  // Copies of the SAME video remain detectable in both regimes.
  StreamData stream = ds_d.BuildStream(StreamVariant::kVS1);
  EXPECT_EQ(stream.truth.size(), 4u);
}

TEST(DatasetTest, SplicesLandOnKeyFrameBoundaries) {
  auto ds = Dataset::Build(SmallOptions()).value();
  StreamData s = ds.BuildStream(StreamVariant::kVS1);
  for (const auto& g : s.truth) {
    // Closed-GOP splice points: insertions start on the stream's key-frame
    // grid (to within frame rounding of the recorded truth position).
    EXPECT_LE(g.begin_frame % ds.options().gop_size, 1)
        << "begin frame " << g.begin_frame;
  }
}

TEST(DatasetTest, EditedCopyHasCropApplied) {
  DatasetOptions with_crop = SmallOptions();
  DatasetOptions no_crop = SmallOptions();
  no_crop.vs2_crop_max = 0.0;
  auto a = Dataset::Build(with_crop).value();
  auto b = Dataset::Build(no_crop).value();
  // Same seed: content identical; only the crop differs, so the edited
  // copies' DC maps must differ while the originals agree.
  EXPECT_GT(a.edit_spec(0).crop_fraction, 0.0);
  EXPECT_EQ(b.edit_spec(0).crop_fraction, 0.0);
}

}  // namespace
}  // namespace vcd::workload
