#include "workload/experiment.h"

#include <gtest/gtest.h>

namespace vcd::workload {
namespace {

DatasetOptions SmallOptions() {
  DatasetOptions o;
  o.num_shorts = 3;
  o.min_short_seconds = 20;
  o.max_short_seconds = 40;
  o.total_seconds = 420;
  o.seed = 21;
  return o;
}

TEST(ExperimentTest, WindowFrames) {
  EXPECT_EQ(WindowFrames(5.0, 29.97), 150);
  EXPECT_EQ(WindowFrames(1.0, 25.0), 25);
}

TEST(ExperimentTest, SubscribeAllQueries) {
  auto ds = Dataset::Build(SmallOptions()).value();
  auto det = core::CopyDetector::Create(core::DetectorConfig()).value();
  ASSERT_TRUE(SubscribeQueries(ds, det.get()).ok());
  EXPECT_EQ(det->num_queries(), 3);
}

TEST(ExperimentTest, SubscribeSubset) {
  auto ds = Dataset::Build(SmallOptions()).value();
  auto det = core::CopyDetector::Create(core::DetectorConfig()).value();
  ASSERT_TRUE(SubscribeQueries(ds, det.get(), 2).ok());
  EXPECT_EQ(det->num_queries(), 2);
}

TEST(ExperimentTest, RunDetectorOnVs1FindsEverything) {
  auto ds = Dataset::Build(SmallOptions()).value();
  auto det = core::CopyDetector::Create(core::DetectorConfig()).value();
  ASSERT_TRUE(SubscribeQueries(ds, det.get()).ok());
  StreamData stream = ds.BuildStream(StreamVariant::kVS1);
  auto run = RunDetector(det.get(), stream);
  ASSERT_TRUE(run.ok());
  EXPECT_GT(run->cpu_seconds, 0.0);
  EXPECT_DOUBLE_EQ(run->eval.pr.recall, 1.0);
  EXPECT_DOUBLE_EQ(run->eval.pr.precision, 1.0);
  EXPECT_EQ(run->stats.key_frames,
            static_cast<int64_t>(stream.key_frames.size()));
}

TEST(ExperimentTest, RunDetectorIsRepeatable) {
  auto ds = Dataset::Build(SmallOptions()).value();
  auto det = core::CopyDetector::Create(core::DetectorConfig()).value();
  ASSERT_TRUE(SubscribeQueries(ds, det.get()).ok());
  StreamData stream = ds.BuildStream(StreamVariant::kVS2);
  auto a = RunDetector(det.get(), stream);
  auto b = RunDetector(det.get(), stream);  // ResetStream inside
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->num_matches, b->num_matches);
  EXPECT_EQ(a->eval.num_correct, b->eval.num_correct);
}

TEST(ExperimentTest, SeqBaselineDetectsVs1) {
  auto ds = Dataset::Build(SmallOptions()).value();
  StreamData stream = ds.BuildStream(StreamVariant::kVS1);
  baseline::SeqMatcherOptions opts;
  opts.distance_threshold = 0.08;
  opts.slide_gap = 2;
  auto run = RunSeqBaseline(ds, stream, opts, features::FeatureOptions());
  ASSERT_TRUE(run.ok());
  EXPECT_GT(run->eval.pr.recall, 0.5);
}

TEST(ExperimentTest, SeqBaselineMissesVs2Reordered) {
  auto ds = Dataset::Build(SmallOptions()).value();
  StreamData stream = ds.BuildStream(StreamVariant::kVS2);
  baseline::SeqMatcherOptions opts;
  opts.distance_threshold = 0.08;
  opts.slide_gap = 2;
  auto run = RunSeqBaseline(ds, stream, opts, features::FeatureOptions());
  ASSERT_TRUE(run.ok());
  // Temporal reordering defeats rigid alignment (the paper's Fig. 14).
  EXPECT_LT(run->eval.pr.recall, 0.5);
}

TEST(ExperimentTest, WarpBaselineRuns) {
  auto ds = Dataset::Build(SmallOptions()).value();
  StreamData stream = ds.BuildStream(StreamVariant::kVS2);
  baseline::WarpMatcherOptions opts;
  opts.warp_width = 5;
  opts.slide_gap = 4;
  opts.distance_threshold = 0.08;
  auto run = RunWarpBaseline(ds, stream, opts, features::FeatureOptions());
  ASSERT_TRUE(run.ok());
  EXPECT_GT(run->cpu_seconds, 0.0);
}

}  // namespace
}  // namespace vcd::workload
