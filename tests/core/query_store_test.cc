#include "core/query_store.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "util/logging.h"

#include "core/detector.h"
#include "util/rng.h"

namespace vcd::core {
namespace {

QueryDb MakeDb(int k = 16, int n = 3, uint64_t seed = 0x5eed) {
  QueryDb db;
  db.k = k;
  db.hash_seed = seed;
  Rng rng(9);
  for (int q = 0; q < n; ++q) {
    StoredQuery sq;
    sq.id = q + 1;
    sq.length_frames = 50 + q;
    sq.duration_seconds = 20.5 + q;
    sq.sketch.mins.resize(static_cast<size_t>(k));
    for (auto& v : sq.sketch.mins) v = rng.Next();
    db.queries.push_back(std::move(sq));
  }
  return db;
}

TEST(QueryStoreTest, RoundTrip) {
  QueryDb db = MakeDb();
  auto bytes = SerializeQueries(db);
  ASSERT_TRUE(bytes.ok());
  auto back = DeserializeQueries(bytes->data(), bytes->size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->k, db.k);
  EXPECT_EQ(back->hash_seed, db.hash_seed);
  ASSERT_EQ(back->queries.size(), db.queries.size());
  for (size_t i = 0; i < db.queries.size(); ++i) {
    EXPECT_EQ(back->queries[i].id, db.queries[i].id);
    EXPECT_EQ(back->queries[i].length_frames, db.queries[i].length_frames);
    EXPECT_NEAR(back->queries[i].duration_seconds, db.queries[i].duration_seconds,
                1e-3);
    EXPECT_EQ(back->queries[i].sketch, db.queries[i].sketch);
  }
}

TEST(QueryStoreTest, EmptyDbRoundTrips) {
  QueryDb db;
  db.k = 8;
  db.hash_seed = 1;
  auto bytes = SerializeQueries(db);
  ASSERT_TRUE(bytes.ok());
  auto back = DeserializeQueries(bytes->data(), bytes->size());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->queries.empty());
}

TEST(QueryStoreTest, SerializeValidation) {
  QueryDb db = MakeDb();
  db.queries[1].sketch.mins.resize(5);  // wrong K
  EXPECT_FALSE(SerializeQueries(db).ok());
  db = MakeDb();
  db.k = 0;
  EXPECT_FALSE(SerializeQueries(db).ok());
  db = MakeDb();
  db.queries[0].duration_seconds = -1;
  EXPECT_FALSE(SerializeQueries(db).ok());
}

TEST(QueryStoreTest, DeserializeRejectsCorruption) {
  QueryDb db = MakeDb();
  auto bytes = SerializeQueries(db).value();
  // Bad magic.
  auto bad = bytes;
  bad[0] = 'X';
  EXPECT_EQ(DeserializeQueries(bad.data(), bad.size()).status().code(),
            StatusCode::kCorruption);
  // Truncated.
  EXPECT_EQ(DeserializeQueries(bytes.data(), bytes.size() - 7).status().code(),
            StatusCode::kCorruption);
  // Too short for the header.
  EXPECT_FALSE(DeserializeQueries(bytes.data(), 4).ok());
  // Bad version.
  bad = bytes;
  bad[4] = 99;
  EXPECT_FALSE(DeserializeQueries(bad.data(), bad.size()).ok());
}

TEST(QueryStoreTest, CorruptionMatrix) {
  // Truncate the serialized store at every section boundary and one byte to
  // either side of it: all must be rejected as kCorruption, never accepted
  // and never crash/overread (run under ASan in CI).
  QueryDb db = MakeDb(/*k=*/16, /*n=*/3);
  const auto bytes = SerializeQueries(db).value();
  constexpr size_t kHeader = 4 + 1 + 4 + 8 + 4;
  const size_t per_query = 4 + 4 + 4 + 16 * 8;
  std::vector<size_t> boundaries = {0, 4, 5, 9, 17, kHeader};
  for (size_t q = 1; q <= db.queries.size(); ++q) {
    boundaries.push_back(kHeader + q * per_query);  // end of record q
    boundaries.push_back(kHeader + (q - 1) * per_query + 12);  // after metadata
  }
  for (size_t b : boundaries) {
    for (int delta = -1; delta <= 1; ++delta) {
      if (delta < 0 && b == 0) continue;
      const size_t cut = b + static_cast<size_t>(delta);
      if (cut > bytes.size()) continue;
      auto r = DeserializeQueries(bytes.data(), cut);
      if (cut == bytes.size()) {
        EXPECT_TRUE(r.ok()) << "full-size parse must succeed";
      } else {
        EXPECT_EQ(r.status().code(), StatusCode::kCorruption)
            << "cut at " << cut << " of " << bytes.size();
      }
    }
  }
  // Padding past the true end must also be rejected (trailing bytes).
  auto padded = bytes;
  padded.push_back(0);
  EXPECT_EQ(DeserializeQueries(padded.data(), padded.size()).status().code(),
            StatusCode::kCorruption);
}

TEST(QueryStoreTest, DeserializeRejectsHostileHeaders) {
  QueryDb db = MakeDb(/*k=*/16, /*n=*/1);
  const auto bytes = SerializeQueries(db).value();
  // Implausibly large K: must fail the sanity cap, not allocate gigabytes.
  auto bad = bytes;
  bad[5] = 0x7f;  // K := 0x7fxxxxxx (big-endian u32)
  auto r = DeserializeQueries(bad.data(), bad.size());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  // Huge count with a tiny body: the overflow-safe division check fires
  // before any allocation sized from the count field.
  bad = bytes;
  bad[17] = 0xff;
  bad[18] = 0xff;
  bad[19] = 0xff;
  bad[20] = 0xff;
  r = DeserializeQueries(bad.data(), bad.size());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  // K = 0 is invalid regardless of body size.
  bad = bytes;
  bad[5] = bad[6] = bad[7] = bad[8] = 0;
  EXPECT_EQ(DeserializeQueries(bad.data(), bad.size()).status().code(),
            StatusCode::kCorruption);
}

TEST(QueryStoreTest, FileRoundTrip) {
  const std::string path = "/tmp/vcd_query_store_test.vcdq";
  QueryDb db = MakeDb(32, 5);
  ASSERT_TRUE(SaveQueriesFile(db, path).ok());
  auto back = LoadQueriesFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->queries.size(), 5u);
  EXPECT_EQ(back->queries[4].sketch, db.queries[4].sketch);
  std::remove(path.c_str());
  EXPECT_EQ(LoadQueriesFile(path).status().code(), StatusCode::kNotFound);
}

TEST(QueryStoreTest, DetectorExportImportRoundTrip) {
  // Export a detector's portfolio, reload it into a fresh detector, and
  // check the loaded queries behave identically.
  DetectorConfig config;
  config.K = 64;
  auto a = CopyDetector::Create(config).value();
  Rng rng(3);
  std::vector<features::CellId> q1, q2;
  for (int i = 0; i < 40; ++i) q1.push_back(static_cast<features::CellId>(rng.Uniform(1000)));
  for (int i = 0; i < 30; ++i) q2.push_back(static_cast<features::CellId>(rng.Uniform(1000)));
  ASSERT_TRUE(a->AddQueryCells(1, q1, 16.0).ok());
  ASSERT_TRUE(a->AddQueryCells(2, q2, 12.0).ok());

  QueryDb db;
  db.k = config.K;
  db.hash_seed = config.hash_seed;
  for (auto& [id, len, dur, sk] : a->ExportQueries()) {
    db.queries.push_back(StoredQuery{id, len, dur, std::move(sk)});
  }
  auto bytes = SerializeQueries(db).value();
  auto loaded = DeserializeQueries(bytes.data(), bytes.size()).value();

  auto b = CopyDetector::Create(config).value();
  for (const StoredQuery& q : loaded.queries) {
    ASSERT_TRUE(
        b->AddQuerySketch(q.id, q.sketch, q.length_frames, q.duration_seconds).ok());
  }
  EXPECT_EQ(b->num_queries(), 2);
  // Replay a stream embedding q1 through both detectors: identical matches.
  auto feed = [&](CopyDetector* det) {
    int64_t slot = 0;
    for (int i = 0; i < 30; ++i, ++slot) {
      VCD_CHECK(det->ProcessFingerprint(slot * 12, slot / 2.5,
                                        5000 + static_cast<features::CellId>(i))
                    .ok(),
                "feed");
    }
    for (features::CellId id : q1) {
      VCD_CHECK(det->ProcessFingerprint(slot * 12, slot / 2.5, id).ok(), "feed");
      ++slot;
    }
    VCD_CHECK(det->Finish().ok(), "finish");
  };
  a->ResetStream();
  feed(a.get());
  feed(b.get());
  ASSERT_EQ(a->matches().size(), b->matches().size());
  for (size_t i = 0; i < a->matches().size(); ++i) {
    EXPECT_EQ(a->matches()[i].query_id, b->matches()[i].query_id);
    EXPECT_EQ(a->matches()[i].end_frame, b->matches()[i].end_frame);
  }
  EXPECT_FALSE(a->matches().empty());
}

TEST(QueryStoreTest, AddQuerySketchValidation) {
  DetectorConfig config;
  config.K = 16;
  auto det = CopyDetector::Create(config).value();
  sketch::Sketch wrong;
  wrong.mins.resize(8);
  EXPECT_FALSE(det->AddQuerySketch(1, wrong, 10, 5.0).ok());
  sketch::Sketch right;
  right.mins.resize(16, 7);
  EXPECT_FALSE(det->AddQuerySketch(1, right, 0, 5.0).ok());
  EXPECT_FALSE(det->AddQuerySketch(1, right, 10, 0.0).ok());
  EXPECT_TRUE(det->AddQuerySketch(1, right, 10, 5.0).ok());
}

}  // namespace
}  // namespace vcd::core
