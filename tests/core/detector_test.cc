#include "core/detector.h"

#include <gtest/gtest.h>

#include "util/logging.h"

#include <set>

#include "core/evaluation.h"
#include "util/rng.h"

namespace vcd::core {
namespace {

using features::CellId;

/// A synthetic fingerprinted world: "content" is a sequence of cell ids;
/// queries are id subsequences; the stream plays background noise ids with
/// query content embedded at known frames. Key frames tick at 2.5/s
/// (GOP 12 at 30 fps).
struct World {
  static constexpr double kKeyFps = 2.5;

  Rng rng{1234};

  std::vector<CellId> RandomContent(size_t n, uint32_t lo, uint32_t hi) {
    std::vector<CellId> out;
    for (size_t i = 0; i < n; ++i) {
      out.push_back(lo + static_cast<CellId>(rng.Uniform(hi - lo)));
    }
    return out;
  }

  /// Feeds a cell sequence as consecutive key frames starting at key-frame
  /// slot `at`; slot s is stream frame 12*s at time s/2.5.
  static Status Feed(CopyDetector* det, const std::vector<CellId>& ids, int64_t at) {
    for (size_t i = 0; i < ids.size(); ++i) {
      const int64_t slot = at + static_cast<int64_t>(i);
      VCD_RETURN_IF_ERROR(det->ProcessFingerprint(
          slot * 12, static_cast<double>(slot) / kKeyFps, ids[i]));
    }
    return Status::OK();
  }
};

DetectorConfig SmallConfig() {
  DetectorConfig c;
  c.K = 200;
  c.window_seconds = 4.0;  // 10 key frames per window
  c.delta = 0.7;
  return c;
}

/// Builds a detector with one 40-key-frame query and a 200-slot stream with
/// the (possibly permuted) query embedded at slot 100.
struct Scenario {
  World world;
  std::vector<CellId> query;
  std::vector<CellId> background_a, background_b;
  static constexpr int64_t kInsertSlot = 100;

  Scenario() {
    query = world.RandomContent(40, 0, 1000);
    background_a = world.RandomContent(100, 5000, 9000);
    background_b = world.RandomContent(60, 5000, 9000);
  }

  /// Runs the scenario; returns the detector after Finish().
  std::unique_ptr<CopyDetector> Run(DetectorConfig config,
                                    std::vector<CellId> embedded) {
    auto det = CopyDetector::Create(config);
    VCD_CHECK(det.ok(), det.status().ToString());
    VCD_CHECK((*det)->AddQueryCells(1, query, 16.0).ok(), "add query");
    VCD_CHECK(World::Feed(det->get(), background_a, 0).ok(), "feed");
    VCD_CHECK(World::Feed(det->get(), embedded, kInsertSlot).ok(), "feed");
    VCD_CHECK(World::Feed(det->get(), background_b,
                          kInsertSlot + static_cast<int64_t>(embedded.size()))
                  .ok(),
              "feed");
    VCD_CHECK((*det)->Finish().ok(), "finish");
    return std::move(*det);
  }

  /// True when some match of query 1 lies inside the embedded interval
  /// (allowing the trailing window per the paper's position rule).
  static bool DetectedInWindow(const CopyDetector& det, size_t embedded_len) {
    const int64_t begin = kInsertSlot * 12;
    const int64_t end = (kInsertSlot + static_cast<int64_t>(embedded_len)) * 12;
    for (const Match& m : det.matches()) {
      if (m.query_id == 1 && m.end_frame >= begin && m.end_frame <= end + 10 * 12) {
        return true;
      }
    }
    return false;
  }
};

TEST(CopyDetectorTest, CreateValidation) {
  DetectorConfig c;
  c.K = 0;
  EXPECT_FALSE(CopyDetector::Create(c).ok());
  EXPECT_TRUE(CopyDetector::Create(DetectorConfig()).ok());
}

TEST(CopyDetectorTest, AddQueryValidation) {
  auto det = CopyDetector::Create(SmallConfig()).value();
  EXPECT_FALSE(det->AddQueryCells(1, {}, 10.0).ok());
  EXPECT_FALSE(det->AddQueryCells(1, {1, 2, 3}, -1.0).ok());
  EXPECT_TRUE(det->AddQueryCells(1, {1, 2, 3}, 10.0).ok());
  EXPECT_EQ(det->AddQueryCells(1, {4, 5}, 10.0).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(det->num_queries(), 1);
}

TEST(CopyDetectorTest, RemoveQuery) {
  auto det = CopyDetector::Create(SmallConfig()).value();
  ASSERT_TRUE(det->AddQueryCells(1, {1, 2, 3}, 10.0).ok());
  EXPECT_TRUE(det->RemoveQuery(1).ok());
  EXPECT_EQ(det->RemoveQuery(1).code(), StatusCode::kNotFound);
  // Id can be reused after removal.
  EXPECT_TRUE(det->AddQueryCells(1, {4, 5, 6}, 10.0).ok());
}

/// All four method variants × both orders must detect a verbatim copy.
class DetectorVariantTest
    : public ::testing::TestWithParam<std::tuple<Representation, bool, CombinationOrder>> {};

TEST_P(DetectorVariantTest, DetectsVerbatimCopy) {
  auto [repr, use_index, order] = GetParam();
  DetectorConfig c = SmallConfig();
  c.representation = repr;
  c.use_index = use_index;
  c.order = order;
  if (order == CombinationOrder::kGeometric) {
    // Geometric order only materializes geometrically spaced candidate
    // lengths, so the best candidate covering the copy also drags in some
    // background — the recall cost the paper describes. A slightly lower
    // threshold compensates in this controlled scenario.
    c.delta = 0.6;
  }
  Scenario s;
  auto det = s.Run(c, s.query);
  EXPECT_TRUE(Scenario::DetectedInWindow(*det, s.query.size()))
      << RepresentationName(repr) << (use_index ? "Index" : "NoIndex") << " "
      << CombinationOrderName(order);
}

TEST_P(DetectorVariantTest, DetectsReorderedCopy) {
  auto [repr, use_index, order] = GetParam();
  if (order == CombinationOrder::kGeometric) {
    GTEST_SKIP() << "geometric order trades recall for speed; covered by the "
                    "sequential variants";
  }
  DetectorConfig c = SmallConfig();
  c.representation = repr;
  c.use_index = use_index;
  c.order = order;
  Scenario s;
  // Reorder the copy in 4 chunks of 10 key frames — set similarity is
  // unaffected, which is the paper's core robustness claim.
  std::vector<CellId> reordered;
  for (int chunk : {2, 0, 3, 1}) {
    for (int i = 0; i < 10; ++i) {
      reordered.push_back(s.query[static_cast<size_t>(chunk * 10 + i)]);
    }
  }
  auto det = s.Run(c, reordered);
  EXPECT_TRUE(Scenario::DetectedInWindow(*det, reordered.size()));
}

TEST_P(DetectorVariantTest, NoFalsePositivesOnPureBackground) {
  auto [repr, use_index, order] = GetParam();
  DetectorConfig c = SmallConfig();
  c.representation = repr;
  c.use_index = use_index;
  c.order = order;
  Scenario s;
  auto det = s.Run(c, s.world.RandomContent(40, 5000, 9000));
  EXPECT_TRUE(det->matches().empty())
      << "false positive from " << RepresentationName(repr);
}

INSTANTIATE_TEST_SUITE_P(
    Variants, DetectorVariantTest,
    ::testing::Combine(::testing::Values(Representation::kSketch, Representation::kBit),
                       ::testing::Bool(),
                       ::testing::Values(CombinationOrder::kSequential,
                                         CombinationOrder::kGeometric)));

TEST(CopyDetectorTest, BitAndSketchAgreeWithoutIndex) {
  // The bit signature is a lossless re-encoding of sketch/query relations:
  // BitNoIndex and SketchNoIndex must report identical match sets in
  // Sequential order (pruning only removes candidates that could never
  // match).
  Scenario s;
  DetectorConfig cb = SmallConfig();
  cb.representation = Representation::kBit;
  cb.use_index = false;
  DetectorConfig cs = cb;
  cs.representation = Representation::kSketch;
  auto db = s.Run(cb, s.query);
  auto dsk = s.Run(cs, s.query);
  ASSERT_EQ(db->matches().size(), dsk->matches().size());
  for (size_t i = 0; i < db->matches().size(); ++i) {
    EXPECT_EQ(db->matches()[i].query_id, dsk->matches()[i].query_id);
    EXPECT_EQ(db->matches()[i].end_frame, dsk->matches()[i].end_frame);
    EXPECT_DOUBLE_EQ(db->matches()[i].similarity, dsk->matches()[i].similarity);
  }
}

TEST(CopyDetectorTest, PruningDoesNotChangeMatches) {
  // Lemma 2 is safe: enabling pruning must not lose any detection.
  Scenario s;
  DetectorConfig on = SmallConfig();
  on.representation = Representation::kBit;
  on.use_index = false;
  DetectorConfig off = on;
  off.enable_pruning = false;
  auto don = s.Run(on, s.query);
  auto doff = s.Run(off, s.query);
  ASSERT_EQ(don->matches().size(), doff->matches().size());
  for (size_t i = 0; i < don->matches().size(); ++i) {
    EXPECT_EQ(don->matches()[i].end_frame, doff->matches()[i].end_frame);
  }
  // And pruning must actually have fired.
  EXPECT_GT(don->stats().candidates_pruned, 0);
}

TEST(CopyDetectorTest, ReportCooldownSuppressesDuplicates) {
  Scenario s;
  DetectorConfig burst = SmallConfig();
  burst.report_cooldown_seconds = 0.0;  // report everything
  DetectorConfig cool = SmallConfig();  // default: cooldown = query duration
  auto db = s.Run(burst, s.query);
  auto dc = s.Run(cool, s.query);
  EXPECT_GT(db->matches().size(), dc->matches().size());
  EXPECT_GE(dc->matches().size(), 1u);
}

TEST(CopyDetectorTest, CandidatesExpireAtLambdaL) {
  Scenario s;
  DetectorConfig c = SmallConfig();
  auto det = s.Run(c, s.query);
  // Query duration 16 s, λ=2, w=4 s → max 8 windows per candidate.
  const auto& stats = det->stats();
  EXPECT_GT(stats.windows, 0);
  EXPECT_LE(stats.candidates_per_window.max(), 8.0 + 1e-9);
}

TEST(CopyDetectorTest, ValidateStateHoldsAcrossConfigurations) {
  // Run the full scenario under every representation × order × index
  // combination with the per-window debug sweep enabled: any violated
  // candidate invariant (expiry bound, sort order, malformed signature)
  // aborts inside ProcessWindow, and the final explicit call covers the
  // post-Finish state.
  for (auto rep : {Representation::kBit, Representation::kSketch}) {
    for (auto ord : {CombinationOrder::kSequential, CombinationOrder::kGeometric}) {
      for (bool use_index : {true, false}) {
        Scenario s;
        DetectorConfig c = SmallConfig();
        c.representation = rep;
        c.order = ord;
        c.use_index = use_index;
        c.validate_state = true;
        auto det = s.Run(c, s.query);
        EXPECT_TRUE(det->ValidateState().ok());
      }
    }
  }
}

TEST(CopyDetectorTest, StatsCountKeyFramesAndWindows) {
  auto det = CopyDetector::Create(SmallConfig()).value();
  ASSERT_TRUE(det->AddQueryCells(1, {1, 2, 3}, 10.0).ok());
  World w;
  ASSERT_TRUE(World::Feed(det.get(), w.RandomContent(50, 0, 100), 0).ok());
  ASSERT_TRUE(det->Finish().ok());
  EXPECT_EQ(det->stats().key_frames, 50);
  // 50 key frames at 2.5/s = 20 s = 5 windows of 4 s.
  EXPECT_EQ(det->stats().windows, 5);
}

TEST(CopyDetectorTest, ResetStreamKeepsQueries) {
  Scenario s;
  auto det = s.Run(SmallConfig(), s.query);
  EXPECT_FALSE(det->matches().empty());
  det->ResetStream();
  EXPECT_TRUE(det->matches().empty());
  EXPECT_EQ(det->stats().key_frames, 0);
  EXPECT_EQ(det->num_queries(), 1);
  // The stream can be replayed with identical results.
  ASSERT_TRUE(World::Feed(det.get(), s.background_a, 0).ok());
  ASSERT_TRUE(World::Feed(det.get(), s.query, Scenario::kInsertSlot).ok());
  ASSERT_TRUE(det->Finish().ok());
  EXPECT_TRUE(Scenario::DetectedInWindow(*det, s.query.size()));
}

TEST(CopyDetectorTest, OnlineQuerySubscriptionMidStream) {
  DetectorConfig c = SmallConfig();
  Scenario s;
  auto det = CopyDetector::Create(c).value();
  // Start streaming with no queries at all.
  ASSERT_TRUE(World::Feed(det.get(), s.background_a, 0).ok());
  // Subscribe mid-stream, then the copy arrives.
  ASSERT_TRUE(det->AddQueryCells(1, s.query, 16.0).ok());
  ASSERT_TRUE(World::Feed(det.get(), s.query, Scenario::kInsertSlot).ok());
  ASSERT_TRUE(World::Feed(det.get(), s.background_b, 140).ok());
  ASSERT_TRUE(det->Finish().ok());
  EXPECT_TRUE(Scenario::DetectedInWindow(*det, s.query.size()));
}

TEST(CopyDetectorTest, UnsubscribedQueryStopsMatching) {
  DetectorConfig c = SmallConfig();
  Scenario s;
  auto det = CopyDetector::Create(c).value();
  ASSERT_TRUE(det->AddQueryCells(1, s.query, 16.0).ok());
  ASSERT_TRUE(World::Feed(det.get(), s.background_a, 0).ok());
  ASSERT_TRUE(det->RemoveQuery(1).ok());
  ASSERT_TRUE(World::Feed(det.get(), s.query, Scenario::kInsertSlot).ok());
  ASSERT_TRUE(det->Finish().ok());
  EXPECT_TRUE(det->matches().empty());
}

TEST(CopyDetectorTest, MultipleQueriesEachDetected) {
  DetectorConfig c = SmallConfig();
  World w;
  auto det = CopyDetector::Create(c).value();
  std::vector<std::vector<CellId>> queries;
  for (int q = 0; q < 5; ++q) {
    queries.push_back(w.RandomContent(30, static_cast<uint32_t>(q * 2000),
                                      static_cast<uint32_t>(q * 2000 + 1000)));
    ASSERT_TRUE(det->AddQueryCells(q + 1, queries.back(), 12.0).ok());
  }
  int64_t slot = 0;
  std::vector<int64_t> insert_at;
  for (int q = 0; q < 5; ++q) {
    ASSERT_TRUE(World::Feed(det.get(), w.RandomContent(30, 50000, 90000), slot).ok());
    slot += 30;
    insert_at.push_back(slot);
    ASSERT_TRUE(World::Feed(det.get(), queries[static_cast<size_t>(q)], slot).ok());
    slot += 30;
  }
  ASSERT_TRUE(det->Finish().ok());
  std::set<int> detected;
  for (const Match& m : det->matches()) detected.insert(m.query_id);
  EXPECT_EQ(detected, (std::set<int>{1, 2, 3, 4, 5}));
}

TEST(CopyDetectorTest, SimilarityReportedAboveThreshold) {
  Scenario s;
  auto det = s.Run(SmallConfig(), s.query);
  for (const Match& m : det->matches()) {
    EXPECT_GE(m.similarity, 0.7);
    EXPECT_LE(m.similarity, 1.0);
    EXPECT_LE(m.start_frame, m.end_frame);
  }
}

TEST(CopyDetectorTest, MemoryStatsTrackSignatures) {
  Scenario s;
  DetectorConfig c = SmallConfig();
  auto det = s.Run(c, s.query);
  EXPECT_GT(det->stats().signatures_per_window.count(), 0);
  // With one query, a candidate holds at most one signature.
  EXPECT_LE(det->stats().signatures_per_window.max(),
            det->stats().candidates_per_window.max());
}


TEST(CopyDetectorTest, StatsCountersReflectRepresentation) {
  Scenario s;
  DetectorConfig cs = SmallConfig();
  cs.representation = Representation::kSketch;
  cs.use_index = false;
  auto dsk = s.Run(cs, s.query);
  EXPECT_GT(dsk->stats().sketch_combines, 0);
  EXPECT_GT(dsk->stats().sketch_compares, 0);
  EXPECT_EQ(dsk->stats().bitsig_ors, 0);

  DetectorConfig cb = SmallConfig();
  cb.representation = Representation::kBit;
  cb.use_index = false;
  auto db = s.Run(cb, s.query);
  EXPECT_GT(db->stats().bitsig_builds, 0);
  EXPECT_GT(db->stats().bitsig_ors, 0);
  EXPECT_EQ(db->stats().sketch_compares, 0);
}

TEST(CopyDetectorTest, LambdaBoundsCandidateLength) {
  // Sketch candidates persist until the λL expiry (Bit candidates can be
  // dropped earlier when all their signatures prune), so the Sketch
  // representation exposes the bound directly.
  Scenario s;
  DetectorConfig c1 = SmallConfig();
  c1.representation = Representation::kSketch;
  c1.use_index = false;
  c1.lambda = 1.0;
  auto d1 = s.Run(c1, s.query);
  DetectorConfig c2 = c1;
  c2.lambda = 2.0;
  auto d2 = s.Run(c2, s.query);
  // Query 16 s, w = 4 s: λ=1 caps candidates at 4 windows, λ=2 at 8.
  EXPECT_LE(d1->stats().candidates_per_window.max(), 4.0 + 1e-9);
  EXPECT_LE(d2->stats().candidates_per_window.max(), 8.0 + 1e-9);
  EXPECT_GT(d2->stats().candidates_per_window.max(),
            d1->stats().candidates_per_window.max());
}

TEST(CopyDetectorTest, DeterministicAcrossRuns) {
  Scenario s;
  auto a = s.Run(SmallConfig(), s.query);
  auto b = s.Run(SmallConfig(), s.query);
  ASSERT_EQ(a->matches().size(), b->matches().size());
  for (size_t i = 0; i < a->matches().size(); ++i) {
    EXPECT_EQ(a->matches()[i].end_frame, b->matches()[i].end_frame);
    EXPECT_DOUBLE_EQ(a->matches()[i].similarity, b->matches()[i].similarity);
  }
}

TEST(CopyDetectorTest, KEqualsOneStillRuns) {
  DetectorConfig c = SmallConfig();
  c.K = 1;
  Scenario s;
  auto det = s.Run(c, s.query);
  // With one hash function the estimate is 0 or 1 — behavior is noisy but
  // must be well-formed.
  for (const Match& m : det->matches()) {
    EXPECT_TRUE(m.similarity == 0.0 || m.similarity == 1.0);
  }
}

TEST(CopyDetectorTest, QueryLongerThanStreamNeverMatches) {
  DetectorConfig c = SmallConfig();
  auto det = CopyDetector::Create(c).value();
  World w;
  // Query of 400 key frames (160 s) against a 40-key-frame stream.
  ASSERT_TRUE(det->AddQueryCells(1, w.RandomContent(400, 0, 1000), 160.0).ok());
  ASSERT_TRUE(World::Feed(det.get(), w.RandomContent(40, 0, 1000), 0).ok());
  ASSERT_TRUE(det->Finish().ok());
  // Stream cells come from the same universe, but |stream| / |query| bounds
  // the Jaccard far below δ.
  EXPECT_TRUE(det->matches().empty());
}

TEST(CopyDetectorTest, WindowLargerThanStreamFlushesOnce) {
  DetectorConfig c = SmallConfig();
  c.window_seconds = 1000.0;
  Scenario s;
  auto det = s.Run(c, s.query);
  EXPECT_EQ(det->stats().windows, 1);  // single flushed window
}

TEST(CopyDetectorTest, GeometricSketchTracksMemory) {
  DetectorConfig c = SmallConfig();
  c.representation = Representation::kSketch;
  c.order = CombinationOrder::kGeometric;
  Scenario s;
  auto det = s.Run(c, s.query);
  EXPECT_GT(det->stats().candidates_per_window.count(), 0);
  // A binary-counter ladder holds at most ~log2(max windows) + 1 blocks.
  EXPECT_LE(det->stats().candidates_per_window.max(), 5.0);
}

}  // namespace
}  // namespace vcd::core
