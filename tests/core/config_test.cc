#include "core/config.h"

#include <gtest/gtest.h>

namespace vcd::core {
namespace {

TEST(DetectorConfigTest, DefaultsAreValidAndMatchTable1) {
  DetectorConfig c;
  EXPECT_TRUE(c.Validate().ok());
  EXPECT_EQ(c.K, 800);
  EXPECT_EQ(c.fingerprint.feature.d, 5);
  EXPECT_EQ(c.fingerprint.u, 4);
  EXPECT_DOUBLE_EQ(c.delta, 0.7);
  EXPECT_DOUBLE_EQ(c.window_seconds, 5.0);
  EXPECT_DOUBLE_EQ(c.lambda, 2.0);
}

TEST(DetectorConfigTest, RejectsBadValues) {
  DetectorConfig c;
  c.K = 0;
  EXPECT_FALSE(c.Validate().ok());
  c = DetectorConfig();
  c.delta = 0.0;
  EXPECT_FALSE(c.Validate().ok());
  c = DetectorConfig();
  c.delta = 1.5;
  EXPECT_FALSE(c.Validate().ok());
  c = DetectorConfig();
  c.window_seconds = 0;
  EXPECT_FALSE(c.Validate().ok());
  c = DetectorConfig();
  c.lambda = 0.5;
  EXPECT_FALSE(c.Validate().ok());
  c = DetectorConfig();
  c.fingerprint.u = 0;
  EXPECT_FALSE(c.Validate().ok());
  c = DetectorConfig();
  c.fingerprint.feature.d = 0;
  EXPECT_FALSE(c.Validate().ok());
}

TEST(DetectorConfigTest, Names) {
  EXPECT_STREQ(RepresentationName(Representation::kSketch), "Sketch");
  EXPECT_STREQ(RepresentationName(Representation::kBit), "Bit");
  EXPECT_STREQ(CombinationOrderName(CombinationOrder::kSequential), "Sequential");
  EXPECT_STREQ(CombinationOrderName(CombinationOrder::kGeometric), "Geometric");
}

}  // namespace
}  // namespace vcd::core
