/// \file pooled_equivalence_test.cc
/// The pooled hot path (flat arenas + batched slab kernels) is an exact
/// drop-in for the scalar reference path: over identical schedules the two
/// must produce byte-identical match lists and identical operation counters
/// (builds, ORs, prunes, combines, compares) for every combination of
/// representation, combination order, index use, and pruning — including
/// mid-stream query portfolio churn and query-id reuse.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/detector.h"
#include "sketch/kernels/kernels.h"
#include "util/logging.h"
#include "util/rng.h"

namespace vcd::core {
namespace {

using features::CellId;

constexpr double kKeyFps = 2.5;  // key-frame slots per second (GOP 12 @30fps)

DetectorConfig BaseConfig() {
  DetectorConfig c;
  c.K = 128;
  c.window_seconds = 4.0;  // 10 key frames per window
  c.delta = 0.65;
  return c;
}

std::vector<CellId> RandomContent(Rng* rng, size_t n, uint32_t lo, uint32_t hi) {
  std::vector<CellId> out;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(lo + static_cast<CellId>(rng->Uniform(hi - lo)));
  }
  return out;
}

/// Byte-exact encoding of one match (doubles bit-compared).
std::string MatchKey(const Match& m) {
  char buf[sizeof(int) + sizeof(int64_t) * 2 + sizeof(double) * 3];
  char* p = buf;
  const auto put = [&p](const void* v, size_t n) {
    std::memcpy(p, v, n);
    p += n;
  };
  put(&m.query_id, sizeof m.query_id);
  put(&m.start_frame, sizeof m.start_frame);
  put(&m.end_frame, sizeof m.end_frame);
  put(&m.start_time, sizeof m.start_time);
  put(&m.end_time, sizeof m.end_time);
  put(&m.similarity, sizeof m.similarity);
  return std::string(buf, sizeof buf);
}

struct RunResult {
  std::vector<std::string> matches;
  int64_t windows, builds, ors, pruned, combines, compares;
  int64_t sig_count;
  double sig_sum, cand_sum;
};

/// One fixed schedule: two queries up front, a third subscribed mid-stream,
/// one removed and its id re-added with different content (ordinal reuse),
/// with two copies embedded in the stream.
RunResult RunSchedule(DetectorConfig config) {
  config.validate_state = true;  // full state sweep after every window
  Rng rng(20080615);
  const std::vector<CellId> query1 = RandomContent(&rng, 40, 0, 1000);
  const std::vector<CellId> query2 = RandomContent(&rng, 30, 1000, 2000);
  const std::vector<CellId> query3 = RandomContent(&rng, 35, 2000, 3000);

  auto det = CopyDetector::Create(config).value();
  VCD_CHECK(det->AddQueryCells(1, query1, 16.0).ok(), "add q1");
  VCD_CHECK(det->AddQueryCells(2, query2, 12.0).ok(), "add q2");

  int64_t slot = 0;
  const auto feed = [&](const std::vector<CellId>& ids) {
    for (CellId id : ids) {
      VCD_CHECK(det->ProcessFingerprint(slot * 12,
                                        static_cast<double>(slot) / kKeyFps, id)
                    .ok(),
                "feed");
      ++slot;
    }
  };

  feed(RandomContent(&rng, 60, 5000, 9000));  // background
  feed(query1);                               // copy of q1
  feed(RandomContent(&rng, 30, 5000, 9000));
  // Portfolio churn mid-stream: drop q2, re-use its id for new content.
  VCD_CHECK(det->RemoveQuery(2).ok(), "remove q2");
  VCD_CHECK(det->AddQueryCells(2, query3, 14.0).ok(), "re-add id 2");
  feed(RandomContent(&rng, 30, 5000, 9000));
  feed(query3);  // copy of the re-added query
  feed(RandomContent(&rng, 40, 5000, 9000));
  VCD_CHECK(det->Finish().ok(), "finish");
  VCD_CHECK(det->ValidateState().ok(), "validate");

  RunResult r;
  for (const Match& m : det->matches()) r.matches.push_back(MatchKey(m));
  const DetectorStats& s = det->stats();
  r.windows = s.windows;
  r.builds = s.bitsig_builds;
  r.ors = s.bitsig_ors;
  r.pruned = s.candidates_pruned;
  r.combines = s.sketch_combines;
  r.compares = s.sketch_compares;
  r.sig_count = s.signatures_per_window.count();
  r.sig_sum = s.signatures_per_window.sum();
  r.cand_sum = s.candidates_per_window.sum();
  return r;
}

struct PooledEquivCase {
  Representation rep;
  CombinationOrder order;
  bool use_index;
  bool enable_pruning;
};

class PooledEquivalenceTest : public ::testing::TestWithParam<PooledEquivCase> {};

TEST_P(PooledEquivalenceTest, PooledMatchesScalarByteExactly) {
  const PooledEquivCase& p = GetParam();
  DetectorConfig config = BaseConfig();
  config.representation = p.rep;
  config.order = p.order;
  config.use_index = p.use_index;
  config.enable_pruning = p.enable_pruning;

  config.use_pooled_kernels = false;
  const RunResult scalar = RunSchedule(config);
  config.use_pooled_kernels = true;
  const RunResult pooled = RunSchedule(config);

  ASSERT_FALSE(scalar.matches.empty()) << "schedule must produce matches";
  EXPECT_EQ(pooled.matches, scalar.matches);
  EXPECT_EQ(pooled.windows, scalar.windows);
  EXPECT_EQ(pooled.builds, scalar.builds);
  EXPECT_EQ(pooled.ors, scalar.ors);
  EXPECT_EQ(pooled.pruned, scalar.pruned);
  EXPECT_EQ(pooled.combines, scalar.combines);
  EXPECT_EQ(pooled.compares, scalar.compares);
  EXPECT_EQ(pooled.sig_count, scalar.sig_count);
  EXPECT_EQ(pooled.sig_sum, scalar.sig_sum);
  EXPECT_EQ(pooled.cand_sum, scalar.cand_sum);
}

std::string CaseName(const ::testing::TestParamInfo<PooledEquivCase>& info) {
  const PooledEquivCase& p = info.param;
  std::string name = p.rep == Representation::kBit ? "Bit" : "Sketch";
  name += p.order == CombinationOrder::kSequential ? "Seq" : "Geo";
  name += p.use_index ? "Idx" : "NoIdx";
  name += p.enable_pruning ? "Prune" : "NoPrune";
  return name;
}

std::vector<PooledEquivCase> AllCases() {
  std::vector<PooledEquivCase> cases;
  for (Representation rep : {Representation::kBit, Representation::kSketch}) {
    for (CombinationOrder order :
         {CombinationOrder::kSequential, CombinationOrder::kGeometric}) {
      for (bool idx : {true, false}) {
        for (bool prune : {true, false}) {
          cases.push_back(PooledEquivCase{rep, order, idx, prune});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, PooledEquivalenceTest,
                         ::testing::ValuesIn(AllCases()), CaseName);

/// The kernel-ISA axis: the pooled path must stay byte-identical to the
/// scalar reference under EVERY kernel backend this host supports, not
/// just the default dispatch pick. `ForceIsa` only affects pools built
/// afterwards, so each iteration re-runs the full schedule with freshly
/// created detectors. (CI additionally forces levels process-wide via
/// VCD_KERNEL_ISA matrix legs; this covers whatever the host has in one
/// run.)
TEST(PooledKernelIsaEquivalenceTest, EveryIsaMatchesScalarByteExactly) {
  namespace sk = vcd::sketch::kernels;
  const std::string original = sk::ActiveOps().name;
  for (Representation rep :
       {Representation::kBit, Representation::kSketch}) {
    DetectorConfig config = BaseConfig();
    config.representation = rep;
    config.order = CombinationOrder::kSequential;
    config.use_index = false;
    config.enable_pruning = true;
    config.use_pooled_kernels = false;
    const RunResult scalar = RunSchedule(config);
    config.use_pooled_kernels = true;
    for (sk::Isa isa : sk::SupportedIsas()) {
      ASSERT_TRUE(sk::ForceIsa(sk::IsaName(isa)).ok());
      const RunResult pooled = RunSchedule(config);
      const char* name = sk::IsaName(isa);
      EXPECT_EQ(pooled.matches, scalar.matches) << name;
      EXPECT_EQ(pooled.builds, scalar.builds) << name;
      EXPECT_EQ(pooled.ors, scalar.ors) << name;
      EXPECT_EQ(pooled.pruned, scalar.pruned) << name;
      EXPECT_EQ(pooled.combines, scalar.combines) << name;
      EXPECT_EQ(pooled.compares, scalar.compares) << name;
      EXPECT_EQ(pooled.sig_sum, scalar.sig_sum) << name;
    }
  }
  ASSERT_TRUE(sk::ForceIsa(original).ok());
}

/// Satellite regression: RemoveQuery then AddQuery with the same id must
/// route new matches to the re-added record via the id→ordinal map (the old
/// nested linear scan found the first — stale — record).
TEST(QueryIdReuseTest, ReaddedIdMatchesNewContentOnly) {
  for (bool pooled : {false, true}) {
    Rng rng(77);
    DetectorConfig config = BaseConfig();
    config.use_pooled_kernels = pooled;
    config.validate_state = true;
    const std::vector<CellId> old_content = RandomContent(&rng, 40, 0, 1000);
    const std::vector<CellId> new_content = RandomContent(&rng, 40, 1000, 2000);

    auto det = CopyDetector::Create(config).value();
    ASSERT_TRUE(det->AddQueryCells(7, old_content, 16.0).ok());
    ASSERT_TRUE(det->RemoveQuery(7).ok());
    ASSERT_TRUE(det->AddQueryCells(7, new_content, 16.0).ok());
    // Duplicate add of a live id must still be rejected.
    EXPECT_EQ(det->AddQueryCells(7, old_content, 16.0).code(),
              StatusCode::kAlreadyExists);

    int64_t slot = 0;
    const auto feed = [&](const std::vector<CellId>& ids) {
      for (CellId id : ids) {
        ASSERT_TRUE(det->ProcessFingerprint(
                           slot * 12, static_cast<double>(slot) / kKeyFps, id)
                        .ok());
        ++slot;
      }
    };
    feed(RandomContent(&rng, 30, 5000, 9000));
    feed(old_content);  // copy of the *removed* subscription: must not match
    feed(RandomContent(&rng, 30, 5000, 9000));
    const int64_t new_copy_start = slot * 12;
    feed(new_content);  // copy of the re-added subscription: must match
    feed(RandomContent(&rng, 30, 5000, 9000));
    ASSERT_TRUE(det->Finish().ok());

    bool matched_new = false;
    for (const Match& m : det->matches()) {
      EXPECT_EQ(m.query_id, 7);
      EXPECT_GE(m.end_frame, new_copy_start)
          << (pooled ? "pooled" : "scalar")
          << ": match attributed to the removed subscription's content";
      matched_new = true;
    }
    EXPECT_TRUE(matched_new) << (pooled ? "pooled" : "scalar");
  }
}

}  // namespace
}  // namespace vcd::core
