#include "core/exact_detector.h"

#include <gtest/gtest.h>

#include "core/detector.h"
#include "util/logging.h"
#include "util/rng.h"

namespace vcd::core {
namespace {

using features::CellId;

DetectorConfig SmallConfig() {
  DetectorConfig c;
  c.K = 400;
  c.window_seconds = 4.0;
  c.delta = 0.7;
  return c;
}

std::vector<CellId> RandomCells(Rng* rng, size_t n, uint32_t lo, uint32_t hi) {
  std::vector<CellId> out;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(lo + static_cast<CellId>(rng->Uniform(hi - lo)));
  }
  return out;
}

template <typename Det>
void Feed(Det* det, const std::vector<CellId>& ids, int64_t at) {
  for (size_t i = 0; i < ids.size(); ++i) {
    const int64_t slot = at + static_cast<int64_t>(i);
    VCD_CHECK(det->ProcessFingerprint(slot * 12, static_cast<double>(slot) / 2.5,
                                      ids[i])
                  .ok(),
              "feed");
  }
}

TEST(ExactDetectorTest, CreateAndValidation) {
  EXPECT_TRUE(ExactDetector::Create(SmallConfig()).ok());
  DetectorConfig bad;
  bad.delta = 0;
  EXPECT_FALSE(ExactDetector::Create(bad).ok());
  auto det = ExactDetector::Create(SmallConfig()).value();
  EXPECT_FALSE(det->AddQueryCells(1, {}, 10.0).ok());
  EXPECT_TRUE(det->AddQueryCells(1, {1, 2, 3}, 10.0).ok());
  EXPECT_EQ(det->AddQueryCells(1, {4}, 10.0).code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(det->RemoveQuery(1).ok());
  EXPECT_EQ(det->RemoveQuery(1).code(), StatusCode::kNotFound);
}

TEST(ExactDetectorTest, DetectsExactAndReorderedCopies) {
  Rng rng(3);
  auto query = RandomCells(&rng, 40, 0, 1000);
  for (bool reorder : {false, true}) {
    auto det = ExactDetector::Create(SmallConfig()).value();
    ASSERT_TRUE(det->AddQueryCells(1, query, 16.0).ok());
    std::vector<CellId> embedded = query;
    if (reorder) std::rotate(embedded.begin(), embedded.begin() + 17, embedded.end());
    Feed(det.get(), RandomCells(&rng, 60, 5000, 9000), 0);
    Feed(det.get(), embedded, 60);
    Feed(det.get(), RandomCells(&rng, 40, 5000, 9000), 100);
    ASSERT_TRUE(det->Finish().ok());
    bool found = false;
    for (const Match& m : det->matches()) found |= m.query_id == 1;
    EXPECT_TRUE(found) << (reorder ? "reordered" : "verbatim");
  }
}

TEST(ExactDetectorTest, ExactCopySimilarityIsOne) {
  Rng rng(5);
  auto query = RandomCells(&rng, 40, 0, 1000);
  auto det = ExactDetector::Create(SmallConfig()).value();
  ASSERT_TRUE(det->AddQueryCells(1, query, 16.0).ok());
  Feed(det.get(), query, 0);
  ASSERT_TRUE(det->Finish().ok());
  ASSERT_FALSE(det->matches().empty());
  // The first report may come from a partial-coverage candidate that
  // already crossed δ; the full-coverage candidate reaches exactly 1.
  EXPECT_GE(det->matches()[0].similarity, 0.7);
  EXPECT_DOUBLE_EQ(det->BestSimilarity(1), 1.0);
}

TEST(ExactDetectorTest, NoFalsePositives) {
  Rng rng(7);
  auto det = ExactDetector::Create(SmallConfig()).value();
  ASSERT_TRUE(det->AddQueryCells(1, RandomCells(&rng, 40, 0, 1000), 16.0).ok());
  Feed(det.get(), RandomCells(&rng, 200, 5000, 9000), 0);
  ASSERT_TRUE(det->Finish().ok());
  EXPECT_TRUE(det->matches().empty());
}

TEST(ExactDetectorTest, SketchEstimateTracksExactOracle) {
  // The core approximation claim: the K-min-hash engine's reported
  // similarity approaches the exact engine's on the same stream.
  Rng rng(11);
  auto query = RandomCells(&rng, 50, 0, 2000);
  DetectorConfig config = SmallConfig();
  config.K = 1500;
  config.delta = 0.5;
  auto exact = ExactDetector::Create(config).value();
  auto approx = CopyDetector::Create(config).value();
  ASSERT_TRUE(exact->AddQueryCells(1, query, 20.0).ok());
  ASSERT_TRUE(approx->AddQueryCells(1, query, 20.0).ok());
  // Embed a 70 % overlapping variant of the query.
  std::vector<CellId> variant = query;
  for (size_t i = 0; i < variant.size(); i += 4) {
    variant[i] = 10000 + static_cast<CellId>(i);
  }
  auto feed_all = [&](auto* det) {
    Feed(det, RandomCells(&rng, 40, 5000, 9000), 0);
    Feed(det, variant, 40);
    VCD_CHECK(det->Finish().ok(), "finish");
  };
  Rng save = rng;  // identical streams for both engines
  feed_all(exact.get());
  rng = save;
  feed_all(approx.get());
  ASSERT_FALSE(exact->matches().empty());
  ASSERT_FALSE(approx->matches().empty());
  // Matched positions agree, similarities agree within min-hash noise.
  EXPECT_EQ(exact->matches()[0].query_id, approx->matches()[0].query_id);
  EXPECT_NEAR(exact->matches()[0].similarity, approx->matches()[0].similarity, 0.06);
}

TEST(ExactDetectorTest, BestSimilarityExposesOracle) {
  Rng rng(13);
  auto query = RandomCells(&rng, 30, 0, 500);
  auto det = ExactDetector::Create(SmallConfig()).value();
  ASSERT_TRUE(det->AddQueryCells(1, query, 12.0).ok());
  EXPECT_DOUBLE_EQ(det->BestSimilarity(1), 0.0);
  Feed(det.get(), query, 0);
  ASSERT_TRUE(det->Finish().ok());
  EXPECT_GT(det->BestSimilarity(1), 0.9);
  EXPECT_DOUBLE_EQ(det->BestSimilarity(999), 0.0);
}

TEST(ExactDetectorTest, ResetStreamKeepsQueries) {
  Rng rng(17);
  auto query = RandomCells(&rng, 30, 0, 500);
  auto det = ExactDetector::Create(SmallConfig()).value();
  ASSERT_TRUE(det->AddQueryCells(1, query, 12.0).ok());
  Feed(det.get(), query, 0);
  ASSERT_TRUE(det->Finish().ok());
  EXPECT_FALSE(det->matches().empty());
  det->ResetStream();
  EXPECT_TRUE(det->matches().empty());
  Feed(det.get(), query, 0);
  ASSERT_TRUE(det->Finish().ok());
  EXPECT_FALSE(det->matches().empty());
}

}  // namespace
}  // namespace vcd::core
