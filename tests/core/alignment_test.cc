#include "core/alignment.h"

#include <gtest/gtest.h>

#include "util/logging.h"
#include "video/scene_model.h"
#include "video/synthetic.h"

namespace vcd::core {
namespace {

using vcd::video::DcFrame;
using vcd::video::RenderDcFrames;
using vcd::video::RenderOptions;
using vcd::video::SceneModel;

std::vector<DcFrame> KeyFrames(const SceneModel& m, double t0, double secs) {
  RenderOptions ro;
  ro.fps = 29.97;
  auto frames = RenderDcFrames(m, t0, secs, ro, 12);
  VCD_CHECK(frames.ok(), "render");
  return std::move(frames).value();
}

/// Concatenates the query's key frames in permuted chunks, re-stamping
/// timestamps to a contiguous stream timeline.
std::vector<DcFrame> Reassemble(const std::vector<DcFrame>& query,
                                const std::vector<std::pair<size_t, size_t>>& pieces) {
  std::vector<DcFrame> out;
  int64_t idx = 0;
  for (auto [begin, end] : pieces) {
    for (size_t i = begin; i < end && i < query.size(); ++i) {
      DcFrame f = query[i];
      f.frame_index = idx * 12;
      f.timestamp = static_cast<double>(idx) * 12 / 29.97;
      out.push_back(std::move(f));
      ++idx;
    }
  }
  return out;
}

TEST(MatchAlignerTest, CreateValidation) {
  EXPECT_TRUE(MatchAligner::Create().ok());
  AlignerOptions bad;
  bad.min_similarity = 1.5;
  EXPECT_FALSE(MatchAligner::Create(bad).ok());
  bad = AlignerOptions();
  bad.shots.threshold = 0;
  EXPECT_FALSE(MatchAligner::Create(bad).ok());
}

TEST(MatchAlignerTest, RejectsEmptyInput) {
  auto aligner = MatchAligner::Create().value();
  SceneModel m = SceneModel::Generate(1, 20.0);
  auto q = KeyFrames(m, 0, 10.0);
  EXPECT_FALSE(aligner.Align({}, q).ok());
  EXPECT_FALSE(aligner.Align(q, {}).ok());
}

TEST(MatchAlignerTest, IdentityCopyAlignsMonotonically) {
  SceneModel m = SceneModel::Generate(42, 40.0);
  auto query = KeyFrames(m, 0, 36.0);
  auto aligner = MatchAligner::Create().value();
  auto segs = aligner.Align(query, query);
  ASSERT_TRUE(segs.ok());
  ASSERT_FALSE(segs->empty());
  int matched = 0;
  for (const AlignedSegment& s : *segs) {
    if (!s.matched) continue;
    ++matched;
    EXPECT_GT(s.similarity, 0.9);
    // Identity: stream times and query times coincide.
    EXPECT_NEAR(s.stream_begin, s.query_begin, 1.0);
  }
  EXPECT_GT(matched, 0);
  EXPECT_FALSE(MatchAligner::IsReordered(*segs));
}

TEST(MatchAlignerTest, RecoversReorderedStructure) {
  // Swap the halves of the query: the aligner must map the stream's first
  // part to the query's second half and flag the reorder.
  SceneModel m = SceneModel::Generate(77, 40.0);
  auto query = KeyFrames(m, 0, 36.0);
  const size_t half = query.size() / 2;
  auto stream = Reassemble(query, {{half, query.size()}, {0, half}});
  auto aligner = MatchAligner::Create().value();
  auto segs = aligner.Align(stream, query);
  ASSERT_TRUE(segs.ok());
  EXPECT_TRUE(MatchAligner::IsReordered(*segs));
  // The earliest matched stream shot must come from the query's back half.
  for (const AlignedSegment& s : *segs) {
    if (s.matched) {
      EXPECT_GT(s.query_begin, 10.0);
      break;
    }
  }
}

TEST(MatchAlignerTest, ForeignMaterialLeftUnmatched) {
  SceneModel qm = SceneModel::Generate(5, 30.0);
  SceneModel other = SceneModel::Generate(999, 30.0);
  auto query = KeyFrames(qm, 0, 20.0);
  // Stream: 10 s of query content then 10 s of unrelated material.
  auto part1 = KeyFrames(qm, 0, 10.0);
  auto part2 = KeyFrames(other, 0, 10.0);
  std::vector<DcFrame> stream = part1;
  for (DcFrame f : part2) {
    f.frame_index += static_cast<int64_t>(part1.size()) * 12;
    f.timestamp += 10.0;
    stream.push_back(std::move(f));
  }
  auto aligner = MatchAligner::Create().value();
  auto segs = aligner.Align(stream, query);
  ASSERT_TRUE(segs.ok());
  bool any_matched = false, any_unmatched = false;
  for (const AlignedSegment& s : *segs) {
    // Early shots (query material) match; late shots (foreign) must not.
    if (s.stream_begin < 9.0 && s.matched) any_matched = true;
    if (s.stream_begin > 11.0 && !s.matched) any_unmatched = true;
  }
  EXPECT_TRUE(any_matched);
  EXPECT_TRUE(any_unmatched);
}

TEST(MatchAlignerTest, IsReorderedOnSyntheticSegments) {
  std::vector<AlignedSegment> monotone(3);
  monotone[0] = {0, 5, 0, 5, 0.9, true};
  monotone[1] = {5, 10, 5, 10, 0.9, true};
  monotone[2] = {10, 15, 10, 15, 0.9, true};
  EXPECT_FALSE(MatchAligner::IsReordered(monotone));
  std::swap(monotone[0].query_begin, monotone[2].query_begin);
  EXPECT_TRUE(MatchAligner::IsReordered(monotone));
  // Unmatched segments are ignored.
  std::vector<AlignedSegment> holes(2);
  holes[0] = {0, 5, 20, 25, 0.9, true};
  holes[1] = {5, 10, 0, 0, 0.0, false};
  EXPECT_FALSE(MatchAligner::IsReordered(holes));
}

}  // namespace
}  // namespace vcd::core
