#include "core/monitor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/logging.h"
#include "util/rng.h"

namespace vcd::core {
namespace {

using features::CellId;

DetectorConfig SmallConfig() {
  DetectorConfig c;
  c.K = 128;
  c.window_seconds = 4.0;
  return c;
}

std::vector<CellId> RandomCells(Rng* rng, size_t n, uint32_t lo, uint32_t hi) {
  std::vector<CellId> out;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(lo + static_cast<CellId>(rng->Uniform(hi - lo)));
  }
  return out;
}

sketch::Sketch SketchOf(const DetectorConfig& c, const std::vector<CellId>& ids) {
  auto fam = sketch::MinHashFamily::Create(c.K, c.hash_seed).value();
  sketch::Sketcher sk(&fam);
  return sk.FromSequence(ids);
}

/// Builds a small key frame whose fingerprint is a deterministic function
/// of \p fill — the controlled "content" used to drive the monitor.
video::DcFrame TinyFrame(int64_t slot, float fill) {
  video::DcFrame f;
  f.blocks_x = 6;
  f.blocks_y = 6;
  f.frame_index = slot * 12;
  f.timestamp = static_cast<double>(slot) / 2.5;
  f.dc.resize(36);
  // The spatial *profile* must depend on fill: Eq. 1's min-max
  // normalization removes constant offsets, so an offset-only difference
  // would fingerprint identically.
  for (size_t i = 0; i < 36; ++i) {
    f.dc[i] = 8.0f * 60.0f *
              std::sin(0.7f * fill + 0.9f * static_cast<float>(i));
  }
  return f;
}

TEST(StreamMonitorTest, CreateValidatesConfig) {
  DetectorConfig bad;
  bad.K = 0;
  EXPECT_FALSE(StreamMonitor::Create(bad).ok());
  EXPECT_TRUE(StreamMonitor::Create(SmallConfig()).ok());
}

TEST(StreamMonitorTest, OpenCloseStreams) {
  auto mon = StreamMonitor::Create(SmallConfig()).value();
  auto s1 = mon->OpenStream("satellite-1");
  auto s2 = mon->OpenStream("cable-7");
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_NE(*s1, *s2);
  EXPECT_EQ(mon->num_open_streams(), 2);
  EXPECT_TRUE(mon->CloseStream(*s1).ok());
  EXPECT_EQ(mon->num_open_streams(), 1);
  EXPECT_EQ(mon->CloseStream(*s1).code(), StatusCode::kNotFound);
  EXPECT_EQ(mon->ProcessKeyFrame(*s1, TinyFrame(0, 10)).code(), StatusCode::kNotFound);
}

TEST(StreamMonitorTest, QueryPortfolioPropagation) {
  auto mon = StreamMonitor::Create(SmallConfig()).value();
  Rng rng(5);
  auto cells = RandomCells(&rng, 40, 0, 500);
  const auto sk = SketchOf(SmallConfig(), cells);
  // Query added before any stream exists.
  ASSERT_TRUE(mon->AddQuerySketch(1, sk, 40, 16.0).ok());
  EXPECT_EQ(mon->AddQuerySketch(1, sk, 40, 16.0).code(), StatusCode::kAlreadyExists);
  auto s1 = mon->OpenStream("a").value();
  // Query added after a stream opened: must land on it too.
  ASSERT_TRUE(mon->AddQuerySketch(2, SketchOf(SmallConfig(), RandomCells(&rng, 30, 1000, 1500)),
                                  30, 12.0)
                  .ok());
  EXPECT_EQ(mon->num_queries(), 2);
  // Remove everywhere.
  ASSERT_TRUE(mon->RemoveQuery(1).ok());
  EXPECT_EQ(mon->RemoveQuery(1).code(), StatusCode::kNotFound);
  EXPECT_EQ(mon->num_queries(), 1);
  (void)s1;
}

TEST(StreamMonitorTest, ImportValidatesFamily) {
  auto mon = StreamMonitor::Create(SmallConfig()).value();
  QueryDb db;
  db.k = 64;  // mismatched K
  db.hash_seed = SmallConfig().hash_seed;
  EXPECT_EQ(mon->ImportQueries(db).code(), StatusCode::kFailedPrecondition);
  db.k = SmallConfig().K;
  db.hash_seed = 999;  // mismatched seed
  EXPECT_EQ(mon->ImportQueries(db).code(), StatusCode::kFailedPrecondition);
  db.hash_seed = SmallConfig().hash_seed;
  EXPECT_TRUE(mon->ImportQueries(db).ok());  // empty db, matching family
}

TEST(StreamMonitorTest, DetectionsAttributedToStreams) {
  // Two streams with the same copy embedded at different times: matches
  // must carry the right stream id and name.
  DetectorConfig c = SmallConfig();
  c.delta = 0.6;
  auto mon = StreamMonitor::Create(c).value();

  // The query: the cell sequence the fingerprinter produces for a ramp of
  // TinyFrames 100..139 — computed via a scratch detector fingerprinting.
  auto scratch = CopyDetector::Create(c).value();
  std::vector<video::DcFrame> qframes;
  for (int i = 0; i < 40; ++i) qframes.push_back(TinyFrame(i, 100.0f + i));
  ASSERT_TRUE(mon->AddQuery(1, qframes, 16.0).ok());

  auto s1 = mon->OpenStream("east").value();
  auto s2 = mon->OpenStream("west").value();
  // Stream east: background then the copy.
  int64_t slot = 0;
  for (int i = 0; i < 30; ++i, ++slot) {
    ASSERT_TRUE(mon->ProcessKeyFrame(s1, TinyFrame(slot, -80.0f + (i % 5))).ok());
  }
  for (int i = 0; i < 40; ++i, ++slot) {
    ASSERT_TRUE(mon->ProcessKeyFrame(s1, TinyFrame(slot, 100.0f + i)).ok());
  }
  // Stream west: only background.
  for (int64_t w = 0; w < 70; ++w) {
    ASSERT_TRUE(mon->ProcessKeyFrame(s2, TinyFrame(w, -80.0f + (w % 5))).ok());
  }
  ASSERT_TRUE(mon->CloseStream(s1).ok());
  ASSERT_TRUE(mon->CloseStream(s2).ok());

  std::set<int> streams_with_matches;
  for (const StreamMatch& m : mon->matches()) {
    streams_with_matches.insert(m.stream_id);
    EXPECT_EQ(m.match.query_id, 1);
    EXPECT_EQ(m.stream_name, "east");
  }
  EXPECT_EQ(streams_with_matches, std::set<int>{s1});
}

TEST(StreamMonitorTest, StreamStats) {
  auto mon = StreamMonitor::Create(SmallConfig()).value();
  auto s = mon->OpenStream("x").value();
  for (int64_t i = 0; i < 25; ++i) {
    ASSERT_TRUE(mon->ProcessKeyFrame(s, TinyFrame(i, 10.0f)).ok());
  }
  auto stats = mon->StreamStats(s);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->key_frames, 25);
  EXPECT_FALSE(mon->StreamStats(999).ok());
}

TEST(StreamMonitorTest, IndependentStreamStates) {
  // The same frames fed to two streams at different offsets must not
  // interfere: candidate lists are per-stream.
  auto mon = StreamMonitor::Create(SmallConfig()).value();
  auto s1 = mon->OpenStream("a").value();
  auto s2 = mon->OpenStream("b").value();
  for (int64_t i = 0; i < 30; ++i) {
    ASSERT_TRUE(mon->ProcessKeyFrame(s1, TinyFrame(i, 5.0f)).ok());
  }
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(mon->ProcessKeyFrame(s2, TinyFrame(i, 5.0f)).ok());
  }
  EXPECT_EQ(mon->StreamStats(s1)->key_frames, 30);
  EXPECT_EQ(mon->StreamStats(s2)->key_frames, 10);
}

}  // namespace
}  // namespace vcd::core
