#include "core/evaluation.h"

#include <gtest/gtest.h>

namespace vcd::core {
namespace {

Match M(int qid, int64_t end_frame) {
  Match m;
  m.query_id = qid;
  m.end_frame = end_frame;
  m.start_frame = end_frame - 100;
  return m;
}

GroundTruthEntry G(int qid, int64_t begin, int64_t end) {
  return GroundTruthEntry{qid, begin, end};
}

TEST(EvaluationTest, EmptyEverything) {
  EvalResult r = EvaluateMatches({}, {}, 150);
  EXPECT_EQ(r.pr.precision, 0.0);
  EXPECT_EQ(r.pr.recall, 0.0);
  EXPECT_EQ(r.num_detections, 0);
}

TEST(EvaluationTest, PositionRuleBoundaries) {
  // Correct iff begin + w <= p <= end + w, with w = 150.
  const auto truth = std::vector<GroundTruthEntry>{G(1, 1000, 2000)};
  // p exactly at begin+w.
  EXPECT_EQ(EvaluateMatches({M(1, 1150)}, truth, 150).num_correct, 1);
  // p exactly at end+w.
  EXPECT_EQ(EvaluateMatches({M(1, 2150)}, truth, 150).num_correct, 1);
  // p just before begin+w.
  EXPECT_EQ(EvaluateMatches({M(1, 1149)}, truth, 150).num_correct, 0);
  // p just after end+w.
  EXPECT_EQ(EvaluateMatches({M(1, 2151)}, truth, 150).num_correct, 0);
}

TEST(EvaluationTest, WrongQueryIdNotCredited) {
  const auto truth = std::vector<GroundTruthEntry>{G(1, 1000, 2000)};
  EvalResult r = EvaluateMatches({M(2, 1500)}, truth, 150);
  EXPECT_EQ(r.num_correct, 0);
  EXPECT_EQ(r.pr.precision, 0.0);
  EXPECT_EQ(r.pr.recall, 0.0);
}

TEST(EvaluationTest, PrecisionCountsFractionCorrect) {
  const auto truth = std::vector<GroundTruthEntry>{G(1, 1000, 2000)};
  const std::vector<Match> matches = {M(1, 1500), M(1, 9999), M(1, 1600), M(1, 50)};
  EvalResult r = EvaluateMatches(matches, truth, 150);
  EXPECT_EQ(r.num_detections, 4);
  EXPECT_EQ(r.num_correct, 2);
  EXPECT_DOUBLE_EQ(r.pr.precision, 0.5);
  EXPECT_DOUBLE_EQ(r.pr.recall, 1.0);
}

TEST(EvaluationTest, RecallCountsTruthFound) {
  const auto truth = std::vector<GroundTruthEntry>{
      G(1, 1000, 2000), G(2, 5000, 6000), G(3, 9000, 9900)};
  const std::vector<Match> matches = {M(1, 1500), M(3, 9500)};
  EvalResult r = EvaluateMatches(matches, truth, 150);
  EXPECT_EQ(r.num_truth, 3);
  EXPECT_EQ(r.num_truth_found, 2);
  EXPECT_NEAR(r.pr.recall, 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(r.pr.precision, 1.0);
}

TEST(EvaluationTest, MultipleDetectionsOfSameTruthCountOnceForRecall) {
  const auto truth = std::vector<GroundTruthEntry>{G(1, 1000, 2000)};
  const std::vector<Match> matches = {M(1, 1400), M(1, 1500), M(1, 1600)};
  EvalResult r = EvaluateMatches(matches, truth, 150);
  EXPECT_EQ(r.num_truth_found, 1);
  EXPECT_DOUBLE_EQ(r.pr.recall, 1.0);
  EXPECT_EQ(r.num_correct, 3);
}

TEST(EvaluationTest, SameQueryInsertedTwice) {
  const auto truth = std::vector<GroundTruthEntry>{
      G(1, 1000, 2000), G(1, 50000, 51000)};
  const std::vector<Match> matches = {M(1, 1500)};
  EvalResult r = EvaluateMatches(matches, truth, 150);
  EXPECT_EQ(r.num_truth_found, 1);
  EXPECT_DOUBLE_EQ(r.pr.recall, 0.5);
}

TEST(EvaluationTest, ZeroWindow) {
  const auto truth = std::vector<GroundTruthEntry>{G(1, 100, 200)};
  EXPECT_EQ(EvaluateMatches({M(1, 100)}, truth, 0).num_correct, 1);
  EXPECT_EQ(EvaluateMatches({M(1, 99)}, truth, 0).num_correct, 0);
}

}  // namespace
}  // namespace vcd::core
