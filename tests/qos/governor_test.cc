/// \file governor_test.cc
/// Properties of the overload governor's hysteresis machine (DESIGN.md §17):
///   - no transition ever fires without its watermark condition holding for
///     the full dwell (seeded random-walk property against a shadow trace);
///   - the shed policy is monotone in priority class and never starves any
///     class;
///   - checkpoint export/restore round-trips exactly and clamps garbage
///     conservatively;
///   - QosConfig::Validate rejects each out-of-range field.

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <vector>

#include "qos/governor.h"
#include "qos/qos.h"
#include "util/rng.h"

namespace vcd {
namespace {

using qos::DegradeKnobs;
using qos::Governor;
using qos::GovernorShardCkpt;
using qos::Priority;
using qos::QosConfig;
using qos::QosState;
using qos::ShardSample;
using qos::ShouldShed;
using qos::Transition;

QosConfig TestConfig() {
  QosConfig c;
  c.enabled = true;
  c.degrade_watermark = 0.5;
  c.shed_watermark = 0.85;
  c.recover_watermark = 0.25;
  c.escalate_dwell_ticks = 3;
  c.recover_dwell_ticks = 4;
  return c;
}

ShardSample Fill(double fill, size_t capacity = 100) {
  ShardSample s;
  s.queue_capacity = capacity;
  s.queue_depth = static_cast<size_t>(fill * static_cast<double>(capacity));
  return s;
}

/// Ticks a single-shard governor once and returns the fired transitions.
std::vector<Transition> TickOne(Governor& g, const ShardSample& s) {
  std::vector<Transition> out;
  g.Tick({s}, &out);
  return out;
}

TEST(GovernorTest, StaysNormalBelowTheDegradeWatermark) {
  Governor g(TestConfig(), 1);
  for (int i = 0; i < 200; ++i) {
    // Right below the watermark, forever: never a transition.
    EXPECT_TRUE(TickOne(g, Fill(0.49)).empty());
  }
  EXPECT_EQ(g.shard_state(0), QosState::kNormal);
  EXPECT_EQ(g.global_state(), QosState::kNormal);
}

TEST(GovernorTest, EscalationWaitsForTheFullDwell) {
  const QosConfig c = TestConfig();
  Governor g(c, 1);
  // escalate_dwell_ticks - 1 hot ticks: still Normal.
  for (int i = 0; i < c.escalate_dwell_ticks - 1; ++i) {
    EXPECT_TRUE(TickOne(g, Fill(0.9)).empty());
  }
  // One cool tick resets the streak entirely.
  EXPECT_TRUE(TickOne(g, Fill(0.1)).empty());
  for (int i = 0; i < c.escalate_dwell_ticks - 1; ++i) {
    EXPECT_TRUE(TickOne(g, Fill(0.9)).empty());
  }
  EXPECT_EQ(g.shard_state(0), QosState::kNormal);
  // The dwell-th consecutive hot tick fires Normal -> Degraded.
  const auto fired = TickOne(g, Fill(0.9));
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].from, QosState::kNormal);
  EXPECT_EQ(fired[0].to, QosState::kDegraded);
  EXPECT_EQ(g.shard_state(0), QosState::kDegraded);
}

TEST(GovernorTest, FullArcNormalDegradedSheddingAndBack) {
  const QosConfig c = TestConfig();
  Governor g(c, 1);
  // Normal -> Degraded under degrade-hot pressure.
  for (int i = 0; i < c.escalate_dwell_ticks; ++i) TickOne(g, Fill(0.6));
  ASSERT_EQ(g.shard_state(0), QosState::kDegraded);
  // Degraded holds (not shed-hot, not calm).
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(TickOne(g, Fill(0.6)).empty());
  // Degraded -> Shedding under shed-hot pressure.
  for (int i = 0; i < c.escalate_dwell_ticks; ++i) TickOne(g, Fill(0.9));
  ASSERT_EQ(g.shard_state(0), QosState::kShedding);
  // Shedding -> Degraded as soon as the shed condition is gone for the
  // recovery dwell (0.6 is still degrade-hot — full calm is not required).
  for (int i = 0; i < c.recover_dwell_ticks; ++i) TickOne(g, Fill(0.6));
  ASSERT_EQ(g.shard_state(0), QosState::kDegraded);
  // Degraded -> Recovering -> Normal under sustained calm.
  for (int i = 0; i < c.recover_dwell_ticks; ++i) TickOne(g, Fill(0.1));
  ASSERT_EQ(g.shard_state(0), QosState::kRecovering);
  for (int i = 0; i < c.recover_dwell_ticks; ++i) TickOne(g, Fill(0.1));
  EXPECT_EQ(g.shard_state(0), QosState::kNormal);
}

TEST(GovernorTest, RecoveringRelapsesUnderReturningLoad) {
  const QosConfig c = TestConfig();
  Governor g(c, 1);
  for (int i = 0; i < c.escalate_dwell_ticks; ++i) TickOne(g, Fill(0.6));
  for (int i = 0; i < c.recover_dwell_ticks; ++i) TickOne(g, Fill(0.1));
  ASSERT_EQ(g.shard_state(0), QosState::kRecovering);
  for (int i = 0; i < c.escalate_dwell_ticks; ++i) TickOne(g, Fill(0.7));
  EXPECT_EQ(g.shard_state(0), QosState::kDegraded);
}

TEST(GovernorTest, LagSignalEscalatesWithAnEmptyQueue) {
  QosConfig c = TestConfig();
  c.degrade_lag_us = 500000;
  Governor g(c, 1);
  ShardSample s;  // depth 0: fill pressure is zero
  s.stream_lag_us = 600000;
  for (int i = 0; i < c.escalate_dwell_ticks; ++i) g.Tick({s}, nullptr);
  EXPECT_EQ(g.shard_state(0), QosState::kDegraded);

  // With the lag signal disabled (0), the same lag is ignored.
  Governor off(TestConfig(), 1);
  for (int i = 0; i < 20; ++i) off.Tick({s}, nullptr);
  EXPECT_EQ(off.shard_state(0), QosState::kNormal);
}

TEST(GovernorTest, GlobalStateIsMaxSeverityAcrossShards) {
  const QosConfig c = TestConfig();
  Governor g(c, 3);
  // Shard 1 degrade-hot, shard 2 shed-hot, shard 0 idle.
  for (int i = 0; i < 2 * c.escalate_dwell_ticks; ++i) {
    g.Tick({Fill(0.0), Fill(0.6), Fill(0.95)}, nullptr);
  }
  EXPECT_EQ(g.shard_state(0), QosState::kNormal);
  EXPECT_EQ(g.shard_state(1), QosState::kDegraded);
  EXPECT_EQ(g.shard_state(2), QosState::kShedding);
  EXPECT_EQ(g.global_state(), QosState::kShedding);
}

TEST(GovernorTest, MissingTrailingSamplesCountAsIdle) {
  const QosConfig c = TestConfig();
  Governor g(c, 2);
  // Only shard 0 is sampled; shard 1 must be treated as idle, not hot.
  for (int i = 0; i < c.escalate_dwell_ticks; ++i) {
    g.Tick({Fill(0.9)}, nullptr);
  }
  EXPECT_EQ(g.shard_state(0), QosState::kDegraded);
  EXPECT_EQ(g.shard_state(1), QosState::kNormal);
}

/// The core property: replay a seeded random pressure walk and check every
/// fired transition against a shadow trace of the per-tick pressure
/// predicates — an escalation requires the relevant hot predicate on each of
/// the last escalate_dwell_ticks ticks, a de-escalation the relevant calm
/// predicate on each of the last recover_dwell_ticks ticks. No transition
/// without a watermark crossing held for the full dwell.
TEST(GovernorTest, NoTransitionWithoutWatermarkCrossingAndDwellProperty) {
  const QosConfig c = TestConfig();
  Governor g(c, 1);
  Rng rng(4242);

  struct TickTrace {
    bool degrade_hot, shed_hot, calm;
  };
  std::deque<TickTrace> trace;
  const auto all_recent = [&](int n, auto pred) {
    if (static_cast<int>(trace.size()) < n) return false;
    for (int i = 0; i < n; ++i) {
      if (!pred(trace[trace.size() - 1 - static_cast<size_t>(i)])) return false;
    }
    return true;
  };

  int transitions_seen = 0;
  double fill = 0.0;  // sticky random walk so hot/calm streaks actually happen
  for (int tick = 0; tick < 20000; ++tick) {
    fill += (static_cast<double>(rng.Uniform(1000)) / 1000.0 - 0.5) * 0.3;
    if (fill < 0.0) fill = 0.0;
    if (fill > 1.0) fill = 1.0;
    const ShardSample s = Fill(fill);
    // Predicates over the fill the machine actually sees (depth/capacity is
    // quantized by the integer queue depth, not the raw walk value).
    const double seen = static_cast<double>(s.queue_depth) /
                        static_cast<double>(s.queue_capacity);
    TickTrace t;
    t.degrade_hot = seen >= c.degrade_watermark;
    t.shed_hot = seen >= c.shed_watermark;
    t.calm = seen <= c.recover_watermark;
    trace.push_back(t);

    const QosState before = g.shard_state(0);
    const auto fired = TickOne(g, s);
    ASSERT_LE(fired.size(), 1u);
    if (fired.empty()) continue;
    ++transitions_seen;
    const Transition& tr = fired[0];
    EXPECT_EQ(tr.from, before);
    EXPECT_EQ(tr.to, g.shard_state(0));
    EXPECT_GE(tr.dwell_ticks, 1);
    if (static_cast<int>(tr.to) > static_cast<int>(tr.from)) {
      // Escalation: Normal/Recovering watch the degrade watermark, Degraded
      // the shed watermark — hot on every tick of the escalation dwell.
      if (tr.from == QosState::kDegraded) {
        EXPECT_TRUE(all_recent(c.escalate_dwell_ticks,
                               [](const TickTrace& x) { return x.shed_hot; }))
            << "Degraded->Shedding without a sustained shed crossing";
      } else {
        EXPECT_TRUE(all_recent(c.escalate_dwell_ticks,
                               [](const TickTrace& x) { return x.degrade_hot; }))
            << "escalation without a sustained degrade crossing";
      }
      EXPECT_GE(tr.dwell_ticks, c.escalate_dwell_ticks);
    } else {
      // De-escalation: Shedding only needs the shed condition gone; the
      // others need full calm — on every tick of the recovery dwell.
      if (tr.from == QosState::kShedding) {
        EXPECT_TRUE(all_recent(c.recover_dwell_ticks,
                               [](const TickTrace& x) { return !x.shed_hot; }))
            << "Shedding de-escalated while still shed-hot";
      } else {
        EXPECT_TRUE(all_recent(c.recover_dwell_ticks, [](const TickTrace& x) {
          return x.calm && !x.degrade_hot;
        })) << "de-escalation without sustained calm";
      }
      EXPECT_GE(tr.dwell_ticks, c.recover_dwell_ticks);
    }
    // Reaching a new state restarts the dwell clock.
    EXPECT_EQ(g.shard_dwell_ticks(0), 0);
  }
  // The walk must actually exercise the machine, or the property is vacuous.
  EXPECT_GT(transitions_seen, 10);
}

TEST(GovernorTest, ShouldShedFractionsAreExactAndMonotone) {
  // Exact per-class fractions over any aligned window of 4 sequences.
  for (uint64_t base = 0; base < 64; base += 4) {
    int shed[3] = {0, 0, 0};
    for (uint64_t s = base; s < base + 4; ++s) {
      for (int p = 0; p < 3; ++p) {
        shed[p] += ShouldShed(static_cast<Priority>(p), s) ? 1 : 0;
      }
    }
    EXPECT_EQ(shed[0], 0);  // high: never
    EXPECT_EQ(shed[1], 2);  // normal: 1 in 2
    EXPECT_EQ(shed[2], 3);  // low: 3 in 4
    // Monotone shed ordering by priority class.
    EXPECT_LE(shed[0], shed[1]);
    EXPECT_LE(shed[1], shed[2]);
  }
  // Per-sequence monotonicity: a more important class never sheds a frame a
  // less important class admits... in aggregate; pointwise, high <= others.
  for (uint64_t s = 0; s < 256; ++s) {
    EXPECT_FALSE(ShouldShed(Priority::kHigh, s));
  }
  // Progress guarantee: every class admits at least one frame in any
  // aligned window of 4.
  for (uint64_t base = 0; base < 256; base += 4) {
    for (int p = 0; p < 3; ++p) {
      bool admitted = false;
      for (uint64_t s = base; s < base + 4; ++s) {
        admitted |= !ShouldShed(static_cast<Priority>(p), s);
      }
      EXPECT_TRUE(admitted) << "class " << p << " starved at base " << base;
    }
  }
}

TEST(GovernorTest, PriorityNamesParseAndRoundTrip) {
  Priority p;
  ASSERT_TRUE(qos::ParsePriority("high", &p));
  EXPECT_EQ(p, Priority::kHigh);
  ASSERT_TRUE(qos::ParsePriority("normal", &p));
  EXPECT_EQ(p, Priority::kNormal);
  ASSERT_TRUE(qos::ParsePriority("low", &p));
  EXPECT_EQ(p, Priority::kLow);
  EXPECT_FALSE(qos::ParsePriority("urgent", &p));
  EXPECT_FALSE(qos::ParsePriority("", &p));
  EXPECT_STREQ(qos::PriorityName(Priority::kLow), "low");
  EXPECT_STREQ(qos::QosStateName(QosState::kShedding), "shedding");
}

TEST(GovernorTest, ValidateRejectsEachOutOfRangeField) {
  EXPECT_TRUE(TestConfig().Validate().ok());
  {
    QosConfig c = TestConfig();
    c.tick_ms = -1;
    EXPECT_EQ(c.Validate().code(), StatusCode::kInvalidArgument);
  }
  {
    QosConfig c = TestConfig();
    c.degrade_watermark = 0.0;  // must be > 0
    EXPECT_EQ(c.Validate().code(), StatusCode::kInvalidArgument);
  }
  {
    QosConfig c = TestConfig();
    c.shed_watermark = 1.5;
    EXPECT_EQ(c.Validate().code(), StatusCode::kInvalidArgument);
  }
  {
    QosConfig c = TestConfig();
    c.recover_watermark = 0.6;  // >= degrade_watermark: no hysteresis gap
    EXPECT_EQ(c.Validate().code(), StatusCode::kInvalidArgument);
  }
  {
    QosConfig c = TestConfig();
    c.degrade_watermark = 0.9;  // > shed_watermark
    EXPECT_EQ(c.Validate().code(), StatusCode::kInvalidArgument);
  }
  {
    QosConfig c = TestConfig();
    c.degrade_lag_us = -1;
    EXPECT_EQ(c.Validate().code(), StatusCode::kInvalidArgument);
  }
  {
    QosConfig c = TestConfig();
    c.escalate_dwell_ticks = 0;
    EXPECT_EQ(c.Validate().code(), StatusCode::kInvalidArgument);
  }
  {
    QosConfig c = TestConfig();
    c.recover_dwell_ticks = 0;
    EXPECT_EQ(c.Validate().code(), StatusCode::kInvalidArgument);
  }
  {
    QosConfig c = TestConfig();
    c.degrade.probe_every_n = 0;
    EXPECT_EQ(c.Validate().code(), StatusCode::kInvalidArgument);
  }
  {
    QosConfig c = TestConfig();
    c.degrade.max_candidate_windows = -1;
    EXPECT_EQ(c.Validate().code(), StatusCode::kInvalidArgument);
  }
}

TEST(GovernorTest, CkptRoundTripResumesTheExactTrajectory) {
  const QosConfig c = TestConfig();
  Governor a(c, 2);
  // Drive shard 0 into Degraded and shard 1 partway through an escalation
  // streak, so the export carries a non-trivial mid-flight state.
  for (int i = 0; i < c.escalate_dwell_ticks; ++i) {
    a.Tick({Fill(0.9), Fill(0.0)}, nullptr);
  }
  a.Tick({Fill(0.6), Fill(0.9)}, nullptr);  // shard 1: streak 1 of 3
  ASSERT_EQ(a.shard_state(0), QosState::kDegraded);
  ASSERT_EQ(a.shard_state(1), QosState::kNormal);

  const std::vector<GovernorShardCkpt> ckpt = a.ExportCkpt();
  ASSERT_EQ(ckpt.size(), 2u);
  EXPECT_EQ(ckpt[0].state, static_cast<int32_t>(QosState::kDegraded));

  Governor b(c, 2);
  b.RestoreCkpt(ckpt);
  EXPECT_EQ(b.shard_state(0), a.shard_state(0));
  EXPECT_EQ(b.shard_state(1), a.shard_state(1));
  EXPECT_EQ(b.shard_dwell_ticks(0), a.shard_dwell_ticks(0));

  // Identical subsequent samples produce identical transitions — the
  // restored machine continues the trajectory, streaks included (shard 1
  // needs only the remaining 2 hot ticks, not a fresh 3).
  for (int i = 0; i < c.escalate_dwell_ticks - 1; ++i) {
    std::vector<Transition> ta, tb;
    a.Tick({Fill(0.6), Fill(0.9)}, &ta);
    b.Tick({Fill(0.6), Fill(0.9)}, &tb);
    ASSERT_EQ(ta.size(), tb.size());
    for (size_t k = 0; k < ta.size(); ++k) {
      EXPECT_EQ(ta[k].shard, tb[k].shard);
      EXPECT_EQ(ta[k].from, tb[k].from);
      EXPECT_EQ(ta[k].to, tb[k].to);
      EXPECT_EQ(ta[k].dwell_ticks, tb[k].dwell_ticks);
    }
  }
  EXPECT_EQ(a.shard_state(1), QosState::kDegraded);
  EXPECT_EQ(b.shard_state(1), QosState::kDegraded);
}

TEST(GovernorTest, CkptRestoreClampsGarbageConservatively) {
  Governor g(TestConfig(), 3);
  std::vector<GovernorShardCkpt> ckpt(2);
  ckpt[0].state = 7;  // out of range: clamp to Normal
  ckpt[0].dwell_ticks = -5;
  ckpt[0].escalate_streak = -1;
  ckpt[1].state = static_cast<int32_t>(QosState::kShedding);
  ckpt[1].dwell_ticks = 9;
  // Shard 2 has no entry at all: restores to Normal.
  g.RestoreCkpt(ckpt);
  EXPECT_EQ(g.shard_state(0), QosState::kNormal);
  EXPECT_EQ(g.shard_dwell_ticks(0), 0);
  EXPECT_EQ(g.shard_state(1), QosState::kShedding);
  EXPECT_EQ(g.shard_dwell_ticks(1), 9);
  EXPECT_EQ(g.shard_state(2), QosState::kNormal);

  // Extra trailing entries beyond num_shards are ignored.
  Governor one(TestConfig(), 1);
  std::vector<GovernorShardCkpt> wide(4);
  wide[3].state = static_cast<int32_t>(QosState::kShedding);
  one.RestoreCkpt(wide);
  EXPECT_EQ(one.shard_state(0), QosState::kNormal);
}

TEST(GovernorTest, DegradeKnobIdentity) {
  DegradeKnobs k;
  EXPECT_TRUE(k.IsIdentity());
  k.probe_every_n = 2;
  EXPECT_FALSE(k.IsIdentity());
  k = DegradeKnobs{};
  k.disable_geometric = true;
  EXPECT_FALSE(k.IsIdentity());
  k = DegradeKnobs{};
  k.max_candidate_windows = 8;
  EXPECT_FALSE(k.IsIdentity());
}

}  // namespace
}  // namespace vcd
