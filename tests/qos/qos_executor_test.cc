/// \file qos_executor_test.cc
/// The overload governor wired into the parallel executor (DESIGN.md §17):
///   - enabled-but-never-triggered is byte-identical to governor-off — the
///     key "do no harm" invariant;
///   - a shard in Shedding sheds by priority class (high never, normal 1/2,
///     low 3/4) with exact split accounting in the registry;
///   - Degraded pushes the probe_every_n knob into the detectors and
///     recovery withdraws it;
///   - governor state survives checkpoint/restore mid-Degraded;
///   - a kBlock push against a stalled consumer times out after
///     push_deadline_ms and is counted as cause="deadline" (faultfx);
///   - a seeded ~2x overload soak degrades, sheds low/normal but never
///     high, keeps lag bounded, and survives a mid-Degraded
///     checkpoint/restore (faultfx).

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/config.h"
#include "obs/metrics.h"
#include "parallel/executor.h"
#include "qos/qos.h"
#include "util/faultfx.h"

namespace vcd {
namespace {

using core::DetectorConfig;
using core::ParallelConfig;
using core::StreamMatch;
using parallel::ExecutorCkpt;
using parallel::ExecutorStats;
using parallel::StreamExecutor;
using qos::Priority;
using qos::QosState;

DetectorConfig SmallConfig() {
  DetectorConfig c;
  c.K = 64;
  c.window_seconds = 4.0;
  c.delta = 0.6;
  return c;
}

video::DcFrame TinyFrame(int64_t slot, float fill) {
  video::DcFrame f;
  f.blocks_x = 6;
  f.blocks_y = 6;
  f.frame_index = slot * 12;
  f.timestamp = static_cast<double>(slot) / 2.5;
  f.dc.resize(36);
  for (size_t i = 0; i < 36; ++i) {
    f.dc[i] = 8.0f * 60.0f * std::sin(0.7f * fill + 0.9f * static_cast<float>(i));
  }
  return f;
}

std::vector<video::DcFrame> QueryFrames() {
  std::vector<video::DcFrame> frames;
  for (int i = 0; i < 40; ++i) frames.push_back(TinyFrame(i, 100.0f + i));
  return frames;
}

/// Every field of every match, bit-exact — the byte-identity unit.
bool SameMatches(const std::vector<StreamMatch>& a,
                 const std::vector<StreamMatch>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].stream_id != b[i].stream_id ||
        a[i].stream_name != b[i].stream_name ||
        a[i].match.query_id != b[i].match.query_id ||
        a[i].match.start_frame != b[i].match.start_frame ||
        a[i].match.end_frame != b[i].match.end_frame ||
        a[i].match.start_time != b[i].match.start_time ||
        a[i].match.end_time != b[i].match.end_time ||
        a[i].match.similarity != b[i].match.similarity) {
      return false;
    }
  }
  return true;
}

/// Reads one series value (counter or gauge) by exact key, 0 when absent.
int64_t Series(const obs::MetricsRegistry& reg, const std::string& name,
               const std::string& labels = "") {
  for (const obs::MetricSnapshot& s : reg.Collect()) {
    std::string key = s.name;
    for (const obs::MetricLabel& l : s.labels) {
      key += "{" + l.key + "=" + l.value + "}";
    }
    if (key == name + labels) return s.value;
  }
  return 0;
}

int64_t Shed(const obs::MetricsRegistry& reg, const std::string& priority) {
  return Series(reg, "vcd_qos_frames_shed_total", "{priority=" + priority + "}");
}

ParallelConfig BaseConfig(int threads) {
  ParallelConfig pc;
  pc.num_threads = threads;
  pc.queue_capacity = 64;
  pc.backpressure = core::BackpressurePolicy::kBlock;
  pc.on_corruption = core::CorruptionPolicy::kSkip;
  return pc;
}

/// The canonical 2-stream copy scenario: noise, then an embedded copy of
/// query 1 on both streams. Returns the merged match log.
std::vector<StreamMatch> RunCopyScenario(StreamExecutor& exec, bool tick_qos) {
  EXPECT_TRUE(exec.AddQuery(1, QueryFrames(), 16.0).ok());
  std::vector<int> sids;
  for (int s = 0; s < 2; ++s) {
    sids.push_back(exec.OpenStream("stream-" + std::to_string(s)).value());
  }
  for (int i = 0; i < 65; ++i) {
    for (int s = 0; s < 2; ++s) {
      const float fill = i < 25 ? -80.0f + static_cast<float>((i + s) % 5)
                                : 100.0f + static_cast<float>(i - 25);
      EXPECT_TRUE(
          exec.ProcessKeyFrame(sids[static_cast<size_t>(s)], TinyFrame(i, fill))
              .ok());
    }
    if (tick_qos) exec.TickQos();
  }
  for (int sid : sids) EXPECT_TRUE(exec.CloseStream(sid).ok());
  EXPECT_TRUE(exec.Drain().ok());
  return exec.matches();
}

TEST(QosExecutorTest, IdleGovernorIsByteIdenticalToGovernorOff) {
  // Governor off.
  auto off = StreamExecutor::Create(SmallConfig(), BaseConfig(2)).value();
  const std::vector<StreamMatch> off_matches = RunCopyScenario(*off, false);

  // Governor on with an escalation dwell no real run can satisfy: it senses
  // every round but can never fire a transition.
  ParallelConfig pc = BaseConfig(2);
  pc.qos.enabled = true;
  pc.qos.tick_ms = 0;  // ticked by hand each round
  pc.qos.escalate_dwell_ticks = 1000000;
  auto on = StreamExecutor::Create(SmallConfig(), pc).value();
  const std::vector<StreamMatch> on_matches = RunCopyScenario(*on, true);

  // The scenario must detect something, or identity proves nothing.
  EXPECT_GT(off_matches.size(), 0u);
  EXPECT_TRUE(SameMatches(off_matches, on_matches));

  const ExecutorStats st = on->Stats();
  EXPECT_EQ(st.qos_global_state, static_cast<int>(QosState::kNormal));
  EXPECT_EQ(st.frames_shed, 0);
  EXPECT_EQ(on->QosGlobalState(), QosState::kNormal);
  // The state gauges exist (and read Normal) as soon as the executor does.
  EXPECT_EQ(Series(on->metrics_registry(), "vcd_qos_state", "{shard=0}"), 0);
  EXPECT_EQ(Series(on->metrics_registry(), "vcd_qos_state", "{shard=1}"), 0);
  // The detectors never saw a degrade knob.
  int64_t skipped = 0;
  for (const auto& ds : st.shard_detector_stats) {
    skipped += ds.qos_skipped_windows;
  }
  EXPECT_EQ(skipped, 0);
}

/// Builds a single-shard executor with three open streams (high/normal/low),
/// feeds \p warm_slots frames each, and returns its checkpoint.
struct SeededCkpt {
  ExecutorCkpt ckpt;
  int sid_high = 0, sid_normal = 0, sid_low = 0;
};

SeededCkpt MakeSeededCkpt(const ParallelConfig& pc, int warm_slots) {
  SeededCkpt out;
  auto exec = StreamExecutor::Create(SmallConfig(), pc).value();
  out.sid_high = exec->OpenStream("hi", Priority::kHigh).value();
  out.sid_normal = exec->OpenStream("nm", Priority::kNormal).value();
  out.sid_low = exec->OpenStream("lo", Priority::kLow).value();
  for (int i = 0; i < warm_slots; ++i) {
    for (int sid : {out.sid_high, out.sid_normal, out.sid_low}) {
      EXPECT_TRUE(exec->ProcessKeyFrame(sid, TinyFrame(i, 3.0f)).ok());
    }
  }
  EXPECT_TRUE(exec->Drain().ok());
  out.ckpt = exec->Checkpoint().value();
  return out;
}

TEST(QosExecutorTest, RestoredSheddingShardShedsByPriorityClass) {
  ParallelConfig pc = BaseConfig(1);
  pc.qos.enabled = true;
  pc.qos.tick_ms = 0;
  SeededCkpt seeded = MakeSeededCkpt(pc, 4);

  // Priorities round-trip through the stream records.
  ASSERT_EQ(seeded.ckpt.streams.size(), 3u);
  EXPECT_EQ(seeded.ckpt.streams[0].priority, static_cast<int>(Priority::kHigh));
  EXPECT_EQ(seeded.ckpt.streams[1].priority,
            static_cast<int>(Priority::kNormal));
  EXPECT_EQ(seeded.ckpt.streams[2].priority, static_cast<int>(Priority::kLow));

  // Put the (only) shard's governor machine in Shedding and restore — the
  // deterministic way to a shedding shard, and exactly what a crash during
  // an overload leaves behind.
  seeded.ckpt.qos.assign(1, qos::GovernorShardCkpt{});
  seeded.ckpt.qos[0].state = static_cast<int32_t>(QosState::kShedding);
  seeded.ckpt.qos[0].dwell_ticks = 5;

  auto exec = StreamExecutor::Create(SmallConfig(), pc).value();
  ASSERT_TRUE(exec->RestoreCkpt(seeded.ckpt).ok());
  EXPECT_EQ(exec->QosStateOf(0), QosState::kShedding);
  EXPECT_EQ(exec->QosGlobalState(), QosState::kShedding);

  // 8 frames per stream against fresh (seq 0) shed gates: high admits all
  // 8, normal sheds seqs {1,3,5,7}, low sheds all but seqs {0,4}.
  for (int i = 4; i < 12; ++i) {
    for (int sid : {seeded.sid_high, seeded.sid_normal, seeded.sid_low}) {
      ASSERT_TRUE(exec->ProcessKeyFrame(sid, TinyFrame(i, 3.0f)).ok());
    }
  }
  ASSERT_TRUE(exec->Drain().ok());

  const obs::MetricsRegistry& reg = exec->metrics_registry();
  EXPECT_EQ(Shed(reg, "high"), 0);
  EXPECT_EQ(Shed(reg, "normal"), 4);
  EXPECT_EQ(Shed(reg, "low"), 6);
  EXPECT_EQ(Series(reg, "vcd_frames_dropped_total", "{cause=qos_shed}"), 10);

  const ExecutorStats st = exec->Stats();
  EXPECT_EQ(st.frames_shed, 10);
  EXPECT_EQ(st.qos_global_state, static_cast<int>(QosState::kShedding));
  // Every admitted frame was processed: 24 submitted, 10 shed, 14 ran.
  EXPECT_EQ(st.frames_submitted, 24);
  int64_t processed = 0;
  for (const auto& sh : st.shards) processed += sh.frames_processed;
  EXPECT_EQ(processed, 14);
  // The high-priority stream saw every one of its frames (4 warm + 8 new).
  EXPECT_EQ(exec->StreamStats(seeded.sid_high).value().key_frames, 12);
}

TEST(QosExecutorTest, DegradedKnobsSkipWindowsAndRecoveryWithdrawsThem) {
  ParallelConfig pc = BaseConfig(1);
  pc.qos.enabled = true;
  pc.qos.tick_ms = 0;
  pc.qos.escalate_dwell_ticks = 1;
  pc.qos.recover_dwell_ticks = 1;
  pc.qos.degrade.probe_every_n = 2;
  SeededCkpt seeded = MakeSeededCkpt(pc, 4);

  seeded.ckpt.qos.assign(1, qos::GovernorShardCkpt{});
  seeded.ckpt.qos[0].state = static_cast<int32_t>(QosState::kDegraded);

  auto exec = StreamExecutor::Create(SmallConfig(), pc).value();
  ASSERT_TRUE(exec->RestoreCkpt(seeded.ckpt).ok());
  EXPECT_EQ(exec->QosStateOf(0), QosState::kDegraded);

  // Degraded never sheds — every frame is admitted; the quality knob shows
  // up as skipped combination windows instead (a 4 s basic window completes
  // every ~10 frames at this 0.4 s frame cadence, so feed enough for
  // several).
  for (int i = 4; i < 60; ++i) {
    ASSERT_TRUE(
        exec->ProcessKeyFrame(seeded.sid_high, TinyFrame(i, 3.0f)).ok());
  }
  ASSERT_TRUE(exec->Drain().ok());
  EXPECT_EQ(exec->Stats().frames_shed, 0);
  const int64_t skipped_degraded =
      exec->StreamStats(seeded.sid_high).value().qos_skipped_windows;
  EXPECT_GT(skipped_degraded, 0);

  // A mid-Degraded checkpoint carries the governor machine.
  const ExecutorCkpt mid = exec->Checkpoint().value();
  ASSERT_EQ(mid.qos.size(), 1u);
  EXPECT_EQ(mid.qos[0].state, static_cast<int32_t>(QosState::kDegraded));

  // Idle queue = calm; with 1-tick dwells the first tick de-escalates to
  // Recovering (crossing the Degraded line withdraws the knobs) and the
  // second to Normal.
  exec->TickQos();
  EXPECT_EQ(exec->QosStateOf(0), QosState::kRecovering);
  exec->TickQos();
  EXPECT_EQ(exec->QosStateOf(0), QosState::kNormal);

  for (int i = 60; i < 120; ++i) {
    ASSERT_TRUE(
        exec->ProcessKeyFrame(seeded.sid_high, TinyFrame(i, 3.0f)).ok());
  }
  ASSERT_TRUE(exec->Drain().ok());
  EXPECT_EQ(exec->StreamStats(seeded.sid_high).value().qos_skipped_windows,
            skipped_degraded)
      << "knobs still active after recovery";
}

TEST(QosExecutorTest, PushDeadlineDropsWhenTheConsumerStalls) {
  if (!faultfx::kEnabled) {
    GTEST_SKIP() << "faultfx sites compiled out (build with -DVCD_FAULTFX=ON)";
  }
  faultfx::Injector::Instance().Reset();

  ParallelConfig pc = BaseConfig(1);
  pc.queue_capacity = 2;
  pc.push_deadline_ms = 30;

  // One 400 ms stall on shard 0's worker: the queue backs up, and a kBlock
  // submission can only wait out its deadline.
  faultfx::Plan plan;
  plan.seed = 7;
  plan.key_filter = 1;  // stall keys are shard_id + 1
  plan.max_fires = 1;
  plan.magnitude = 400.0;
  faultfx::ScopedFault fault(faultfx::Site::kShardStall, plan);

  auto exec = StreamExecutor::Create(SmallConfig(), pc).value();
  const int sid = exec->OpenStream("s").value();
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(exec->ProcessKeyFrame(sid, TinyFrame(i, 2.0f)).ok());
  }
  ASSERT_TRUE(exec->Drain().ok());
  faultfx::Injector::Instance().Reset();

  const ExecutorStats st = exec->Stats();
  EXPECT_GE(st.frames_dropped_deadline, 1);
  EXPECT_EQ(st.frames_dropped_deadline,
            Series(exec->metrics_registry(), "vcd_frames_dropped_total",
                   "{cause=deadline}"));
  // Deadline drops are deadline drops — not backpressure, not sheds.
  EXPECT_EQ(st.frames_dropped_backpressure, 0);
  EXPECT_EQ(st.frames_shed, 0);
}

/// The acceptance soak: a seeded ~2x overload (every task pays an injected
/// 1 ms stall while two producers-worth of frames arrive) must drive the
/// governor into Degraded/Shedding, shed normal/low frames but never a
/// high-priority one, keep stream lag bounded, and survive a checkpoint
/// taken mid-Degraded with the governor state intact.
TEST(QosExecutorTest, OverloadSoakShedsLowNeverHighAndSurvivesRestore) {
  if (!faultfx::kEnabled) {
    GTEST_SKIP() << "faultfx sites compiled out (build with -DVCD_FAULTFX=ON)";
  }
  faultfx::Injector::Instance().Reset();

  ParallelConfig pc = BaseConfig(2);
  pc.queue_capacity = 16;
  pc.qos.enabled = true;
  pc.qos.tick_ms = 0;  // ticked from the feed loop: deterministic sensing
  pc.qos.degrade_watermark = 0.25;
  pc.qos.shed_watermark = 0.5;
  pc.qos.recover_watermark = 0.1;
  pc.qos.escalate_dwell_ticks = 1;
  pc.qos.recover_dwell_ticks = 2;
  pc.qos.degrade.probe_every_n = 2;

  faultfx::Plan plan;
  plan.seed = 2026;
  plan.magnitude = 1.0;  // every task pays 1 ms: ~2x the offered frame rate
  faultfx::ScopedFault fault(faultfx::Site::kShardStall, plan);

  auto exec = StreamExecutor::Create(SmallConfig(), pc).value();
  // Shard 0 hosts {high, low}, shard 1 hosts {normal, low} — both shards
  // carry a sheddable stream, and shard 0 proves high never starves.
  const int hi = exec->OpenStream("hi", Priority::kHigh).value();       // shard 0
  const int nm = exec->OpenStream("nm", Priority::kNormal).value();     // shard 1
  const int lo0 = exec->OpenStream("lo0", Priority::kLow).value();      // shard 0
  const int lo1 = exec->OpenStream("lo1", Priority::kLow).value();      // shard 1

  QosState worst = QosState::kNormal;
  int64_t max_lag_us = 0;
  bool ckpt_taken = false;
  ExecutorCkpt mid;
  int64_t hi_submitted = 0;
  for (int round = 0; round < 120; ++round) {
    for (int sid : {hi, nm, lo0, lo1}) {
      ASSERT_TRUE(exec->ProcessKeyFrame(sid, TinyFrame(round, 5.0f)).ok());
      if (sid == hi) ++hi_submitted;
    }
    exec->TickQos();
    const QosState g = exec->QosGlobalState();
    if (static_cast<int>(g) > static_cast<int>(worst)) worst = g;
    for (int sh = 0; sh < 2; ++sh) {
      const int64_t lag =
          Series(exec->metrics_registry(), "vcd_shard_stream_lag_us",
                 "{shard=" + std::to_string(sh) + "}");
      if (lag > max_lag_us) max_lag_us = lag;
    }
    // Once the overload is sensed, cut a checkpoint mid-Degraded: ticking
    // stops so the machines hold their state across the quiesce barrier.
    if (!ckpt_taken && static_cast<int>(g) >= static_cast<int>(QosState::kDegraded) &&
        round >= 40) {
      mid = exec->Checkpoint().value();
      ckpt_taken = true;
    }
  }
  ASSERT_TRUE(exec->Drain().ok());

  // The overload was sensed and degradation engaged.
  EXPECT_GE(static_cast<int>(worst), static_cast<int>(QosState::kDegraded));
  ASSERT_TRUE(ckpt_taken) << "overload never crossed the Degraded line";
  bool mid_degraded = false;
  for (const auto& m : mid.qos) {
    if (m.state >= static_cast<int32_t>(QosState::kDegraded)) mid_degraded = true;
  }
  EXPECT_TRUE(mid_degraded);

  // Priority contract: zero high-priority sheds, ever.
  const obs::MetricsRegistry& reg = exec->metrics_registry();
  EXPECT_EQ(Shed(reg, "high"), 0);
  // The high stream itself saw every frame it submitted.
  EXPECT_EQ(exec->StreamStats(hi).value().key_frames, hi_submitted);
  // Lag stayed bounded (the blocking producer + governor cap it far below
  // this; an unbounded-backlog bug would blow straight through).
  EXPECT_LT(max_lag_us, int64_t{30} * 1000 * 1000);

  // Accounting: submitted = processed + shed, exactly.
  const ExecutorStats st = exec->Stats();
  int64_t processed = 0;
  for (const auto& sh : st.shards) processed += sh.frames_processed;
  EXPECT_EQ(st.frames_submitted, processed + st.frames_shed);

  // Restore the mid-Degraded cut into a fresh executor: the governor state
  // comes back, and the priority contract still holds.
  faultfx::Injector::Instance().Reset();
  auto restored = StreamExecutor::Create(SmallConfig(), pc).value();
  ASSERT_TRUE(restored->RestoreCkpt(mid).ok());
  EXPECT_GE(static_cast<int>(restored->QosGlobalState()),
            static_cast<int>(QosState::kDegraded));
  for (int i = 200; i < 210; ++i) {
    for (int sid : {hi, nm, lo0, lo1}) {
      ASSERT_TRUE(restored->ProcessKeyFrame(sid, TinyFrame(i, 5.0f)).ok());
    }
  }
  ASSERT_TRUE(restored->Drain().ok());
  EXPECT_EQ(Shed(restored->metrics_registry(), "high"), 0);
}

}  // namespace
}  // namespace vcd
