#!/usr/bin/env bash
# Negative-compile test for static lock-order checking
# (Clang Thread Safety Analysis, -Wthread-safety-beta).
#
# Usage: lock_order_compile_test.sh <c++-compiler> <repo-root>
#
# Asserts that, under `-Wthread-safety -Wthread-safety-beta
# -Werror=thread-safety -Werror=thread-safety-beta`:
#   1. lock_order_positive.cc (declared order respected) compiles, and
#   2. lock_order_negative.cc (VCD_ACQUIRED_AFTER order inverted) does NOT
#      compile, with thread-safety diagnostics.
#
# On compilers without the analysis (GCC: the VCD_* annotation macros are
# no-ops and -Wthread-safety is unknown) the test exits 77, which ctest
# maps to SKIPPED via SKIP_RETURN_CODE.
set -u

CXX="${1:?usage: $0 <c++-compiler> <repo-root>}"
ROOT="${2:?usage: $0 <c++-compiler> <repo-root>}"
DIR="$ROOT/tests/lint"
FLAGS=(-std=c++20 -fsyntax-only "-I$ROOT/src"
       -Wthread-safety -Wthread-safety-beta
       -Werror=thread-safety -Werror=thread-safety-beta)

probe_err=$("$CXX" "${FLAGS[@]}" "$DIR/lock_order_positive.cc" 2>&1)
probe_rc=$?
if [ $probe_rc -ne 0 ] && echo "$probe_err" | grep -qiE "unrecognized|unknown.*-Wthread-safety"; then
  echo "SKIP: $CXX does not support -Wthread-safety (annotations are no-ops)"
  exit 77
fi
if [ $probe_rc -ne 0 ]; then
  echo "FAIL: correctly ordered control TU did not compile:"
  echo "$probe_err"
  exit 1
fi

neg_err=$("$CXX" "${FLAGS[@]}" "$DIR/lock_order_negative.cc" 2>&1)
neg_rc=$?
if [ $neg_rc -eq 0 ]; then
  echo "FAIL: lock_order_negative.cc compiled — acquired_before/after checking is not firing"
  exit 1
fi
if ! echo "$neg_err" | grep -q "thread-safety"; then
  echo "FAIL: negative TU failed for a reason other than thread safety:"
  echo "$neg_err"
  exit 1
fi

echo "OK: ordering analysis fires (inverted acquisition rejected at compile time)"
exit 0
