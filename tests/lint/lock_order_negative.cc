/// \file lock_order_negative.cc
/// Negative-compile probe for the *static* half of the deadlock-freedom
/// story (DESIGN.md §14): two mutexes with a declared acquisition order
/// (`VCD_ACQUIRED_AFTER`), locked in the INVERTED order. Under Clang with
/// `-Wthread-safety -Wthread-safety-beta -Werror=thread-safety
///  -Werror=thread-safety-beta` this TU MUST fail to compile —
/// acquired_before/after checking lives behind the -beta flag.
///
/// tests/lint/lock_order_compile_test.sh asserts exactly that (and skips
/// on compilers without the analysis, where the macros are no-ops). If
/// this file ever compiles under the lint build, ordering annotations have
/// become decoration — fail the build.

#include "util/lock_rank.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

vcd::Mutex control_mu{vcd::LockRank::kExecutorControl, "probe.control"};
vcd::Mutex queue_mu VCD_ACQUIRED_AFTER(control_mu){vcd::LockRank::kQueue,
                                                   "probe.queue"};

int DrainInverted() {
  vcd::MutexLock queue(queue_mu);      // BUG: inner taken first
  vcd::MutexLock control(control_mu);  // BUG: outer acquired under inner
  return 0;
}

}  // namespace

int main() { return DrainInverted(); }
