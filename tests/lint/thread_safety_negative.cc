/// \file thread_safety_negative.cc
/// Negative-compile probe: this TU violates the locking discipline the
/// annotations declare, in the two ways a future refactor most likely
/// would — touching a `VCD_GUARDED_BY` member without its mutex, and
/// calling a `VCD_REQUIRES` function without holding the lock.
///
/// Under Clang with `-Wthread-safety -Werror=thread-safety` it MUST fail
/// to compile; tests/lint/thread_safety_compile_test.sh asserts exactly
/// that (and skips on compilers without the analysis, where the macros are
/// no-ops). If this file ever compiles under the lint build, the analysis
/// stopped firing and the annotations are decoration — fail the build.

#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  void Add(int v) {  // BUG: no lock taken
    values_.push_back(v);
  }

  int Total() const {  // BUG: calls a VCD_REQUIRES function without mu_
    return TotalLocked();
  }

 private:
  int TotalLocked() const VCD_REQUIRES(mu_) {
    int sum = 0;
    for (int v : values_) sum += v;
    return sum;
  }

  mutable vcd::Mutex mu_;
  std::vector<int> values_ VCD_GUARDED_BY(mu_);
};

}  // namespace

int main() {
  Counter c;
  c.Add(1);
  return c.Total() == 1 ? 0 : 1;
}
