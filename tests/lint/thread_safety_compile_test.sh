#!/usr/bin/env bash
# Negative-compile test for Clang Thread Safety Analysis.
#
# Usage: thread_safety_compile_test.sh <c++-compiler> <repo-root>
#
# Asserts that, under `-Wthread-safety -Werror=thread-safety`:
#   1. thread_safety_positive.cc (correct locking) compiles, and
#   2. thread_safety_negative.cc (unlocked guarded access + REQUIRES call
#      without the lock) does NOT compile, with thread-safety diagnostics.
#
# On compilers without the analysis (GCC: the VCD_* annotation macros are
# no-ops and -Wthread-safety is unknown) the test exits 77, which ctest
# maps to SKIPPED via SKIP_RETURN_CODE.
set -u

CXX="${1:?usage: $0 <c++-compiler> <repo-root>}"
ROOT="${2:?usage: $0 <c++-compiler> <repo-root>}"
DIR="$ROOT/tests/lint"
FLAGS=(-std=c++20 -fsyntax-only "-I$ROOT/src" -Wthread-safety -Werror=thread-safety)

probe_err=$("$CXX" "${FLAGS[@]}" "$DIR/thread_safety_positive.cc" 2>&1)
probe_rc=$?
if [ $probe_rc -ne 0 ] && echo "$probe_err" | grep -qiE "unrecognized|unknown.*-Wthread-safety"; then
  echo "SKIP: $CXX does not support -Wthread-safety (annotations are no-ops)"
  exit 77
fi
if [ $probe_rc -ne 0 ]; then
  echo "FAIL: correctly locked control TU did not compile:"
  echo "$probe_err"
  exit 1
fi

neg_err=$("$CXX" "${FLAGS[@]}" "$DIR/thread_safety_negative.cc" 2>&1)
neg_rc=$?
if [ $neg_rc -eq 0 ]; then
  echo "FAIL: thread_safety_negative.cc compiled — the analysis is not firing"
  exit 1
fi
if ! echo "$neg_err" | grep -q "thread-safety"; then
  echo "FAIL: negative TU failed for a reason other than thread safety:"
  echo "$neg_err"
  exit 1
fi

echo "OK: analysis fires (negative TU rejected with thread-safety errors)"
exit 0
