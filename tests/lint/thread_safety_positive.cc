/// \file thread_safety_positive.cc
/// Control for the thread-safety negative-compile test: the same shape of
/// code as thread_safety_negative.cc, but with correct lock discipline.
/// This TU must compile cleanly under `-Wthread-safety -Werror=thread-safety`;
/// if it does not, the toolchain (not the tested code) is broken and
/// tests/lint/thread_safety_compile_test.sh fails loudly.

#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  void Add(int v) VCD_EXCLUDES(mu_) {
    vcd::MutexLock lock(mu_);
    AddLocked(v);
  }

  int Total() const VCD_EXCLUDES(mu_) {
    vcd::MutexLock lock(mu_);
    int sum = 0;
    for (int v : values_) sum += v;
    return sum;
  }

 private:
  void AddLocked(int v) VCD_REQUIRES(mu_) { values_.push_back(v); }

  mutable vcd::Mutex mu_;
  std::vector<int> values_ VCD_GUARDED_BY(mu_);
};

}  // namespace

int main() {
  Counter c;
  c.Add(1);
  return c.Total() == 1 ? 0 : 1;
}
