/// \file lock_order_positive.cc
/// Control for the lock-order negative-compile test: two mutexes with a
/// declared acquisition order (`VCD_ACQUIRED_AFTER`), locked in that order.
/// This TU must compile cleanly under
/// `-Wthread-safety -Wthread-safety-beta -Werror=thread-safety
///  -Werror=thread-safety-beta`; if it does not, the toolchain (not the
/// tested code) is broken and tests/lint/lock_order_compile_test.sh fails
/// loudly.
///
/// The ordering mirrors the real hierarchy (src/util/lock_rank.h): an
/// outer "control" lock acquired before an inner "queue" lock.

#include "util/lock_rank.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

vcd::Mutex control_mu{vcd::LockRank::kExecutorControl, "probe.control"};
vcd::Mutex queue_mu VCD_ACQUIRED_AFTER(control_mu){vcd::LockRank::kQueue,
                                                   "probe.queue"};

int DrainUnderControl() {
  vcd::MutexLock control(control_mu);  // outer first...
  vcd::MutexLock queue(queue_mu);      // ...inner second: declared order
  return 0;
}

}  // namespace

int main() { return DrainUnderControl(); }
