/// \file json_test.cc
/// The shared JSON string escaper (util/json.h) — one implementation used
/// by both BenchJsonWriter and the metrics exporter, so its rules are
/// pinned here once: control characters become \u00xx (or the short forms),
/// quotes and backslashes are escaped, and multi-byte UTF-8 passes through
/// byte-for-byte.

#include "util/json.h"

#include <gtest/gtest.h>

#include <string>

namespace vcd::util {
namespace {

TEST(JsonEscapeTest, PlainTextPassesThrough) {
  EXPECT_EQ(JsonEscape("hello world 123 _-./"), "hello world 123 _-./");
  EXPECT_EQ(JsonEscape(""), "");
}

TEST(JsonEscapeTest, QuotesAndBackslashes) {
  EXPECT_EQ(JsonEscape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("\\\""), "\\\\\\\"");
}

TEST(JsonEscapeTest, CommonControlShortForms) {
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape("a\tb"), "a\\tb");
  EXPECT_EQ(JsonEscape("a\rb"), "a\\rb");
}

TEST(JsonEscapeTest, OtherControlCharsBecomeUnicodeEscapes) {
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(JsonEscape(std::string(1, '\x1f')), "\\u001f");
  // NUL embedded in a std::string is still a control character.
  EXPECT_EQ(JsonEscape(std::string("a\0b", 3)), "a\\u0000b");
  // 0x20 (space) is the first unescaped code point.
  EXPECT_EQ(JsonEscape(" "), " ");
}

TEST(JsonEscapeTest, Utf8BytesPassThroughUnchanged) {
  // U+00E9 (é), U+4E2D (中), U+1F600 (😀): 2-, 3- and 4-byte sequences.
  const std::string utf8 = "\xc3\xa9 \xe4\xb8\xad \xf0\x9f\x98\x80";
  EXPECT_EQ(JsonEscape(utf8), utf8);
}

TEST(JsonQuoteTest, WrapsEscapedTextInQuotes) {
  EXPECT_EQ(JsonQuote("abc"), "\"abc\"");
  EXPECT_EQ(JsonQuote(""), "\"\"");
  EXPECT_EQ(JsonQuote("a\"b\nc"), "\"a\\\"b\\nc\"");
}

}  // namespace
}  // namespace vcd::util
