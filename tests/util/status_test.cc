#include "util/status.h"

#include <gtest/gtest.h>

namespace vcd {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) { EXPECT_TRUE(Status::OK().ok()); }

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  struct Case {
    Status s;
    StatusCode code;
    const char* name;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument, "InvalidArgument"},
      {Status::NotFound("b"), StatusCode::kNotFound, "NotFound"},
      {Status::OutOfRange("c"), StatusCode::kOutOfRange, "OutOfRange"},
      {Status::Corruption("d"), StatusCode::kCorruption, "Corruption"},
      {Status::AlreadyExists("e"), StatusCode::kAlreadyExists, "AlreadyExists"},
      {Status::FailedPrecondition("f"), StatusCode::kFailedPrecondition,
       "FailedPrecondition"},
      {Status::Internal("g"), StatusCode::kInternal, "Internal"},
      {Status::Unavailable("h"), StatusCode::kUnavailable, "Unavailable"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.s.ok());
    EXPECT_EQ(c.s.code(), c.code);
    EXPECT_EQ(std::string(StatusCodeName(c.code)), c.name);
    EXPECT_NE(c.s.ToString().find(c.name), std::string::npos);
  }
}

TEST(StatusTest, ToStringIncludesMessage) {
  Status s = Status::InvalidArgument("bad K");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad K");
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return Status::Corruption("inner"); };
  auto outer = [&]() -> Status {
    VCD_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kCorruption);
}

TEST(StatusTest, ReturnIfErrorPassesThroughOk) {
  auto ok = []() -> Status { return Status::OK(); };
  auto outer = [&]() -> Status {
    VCD_RETURN_IF_ERROR(ok());
    return Status::Internal("reached");
  };
  EXPECT_EQ(outer().code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

TEST(ResultTest, MutableValue) {
  Result<std::string> r = std::string("a");
  r.value() += "b";
  EXPECT_EQ(*r, "ab");
}

}  // namespace
}  // namespace vcd
