#include "util/logging.h"

#include <gtest/gtest.h>

namespace vcd {
namespace {

TEST(LoggingTest, MinLevelFilters) {
  // Only checks that the machinery runs and the level gate is honored; the
  // output goes to stderr and is not captured here.
  SetMinLogLevel(LogLevel::kError);
  VCD_INFO("suppressed " << 1);
  VCD_ERROR("emitted " << 2);
  SetMinLogLevel(LogLevel::kInfo);
  EXPECT_EQ(static_cast<int>(internal::MinLogLevel()), static_cast<int>(LogLevel::kInfo));
}

TEST(LoggingTest, CheckPassesOnTrue) {
  EXPECT_NO_FATAL_FAILURE(VCD_CHECK(1 + 1 == 2, "math works"));
}

TEST(LoggingDeathTest, CheckAbortsOnFalse) {
  EXPECT_DEATH(VCD_CHECK(false, "boom"), "CHECK failed");
}

#ifndef NDEBUG
TEST(LoggingDeathTest, DcheckAbortsInDebug) {
  EXPECT_DEATH(VCD_DCHECK(false, "dbg"), "CHECK failed");
}
#endif

}  // namespace
}  // namespace vcd
