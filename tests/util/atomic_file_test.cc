#include "util/atomic_file.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "util/faultfx.h"
#include "util/status.h"

namespace vcd::util {
namespace {

class AtomicFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/vcd_atomic_file_XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    faultfx::Injector::Instance().Reset();
    // Best-effort cleanup; tests create at most a couple of files.
    std::string cmd = "rm -rf " + dir_;
    std::system(cmd.c_str());
  }

  std::string Path(const std::string& name) const { return dir_ + "/" + name; }

  static bool Exists(const std::string& path) {
    return ::access(path.c_str(), F_OK) == 0;
  }

  std::string dir_;
};

TEST_F(AtomicFileTest, WriteCommitRead) {
  const std::string path = Path("a.bin");
  auto w = AtomicFileWriter::Open(path);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(w->Append("hello ").ok());
  ASSERT_TRUE(w->Append("world").ok());
  ASSERT_TRUE(w->Commit().ok());
  std::string back;
  ASSERT_TRUE(ReadFileToString(path, &back).ok());
  EXPECT_EQ(back, "hello world");
}

TEST_F(AtomicFileTest, AbortLeavesOldContent) {
  const std::string path = Path("a.bin");
  {
    auto w = AtomicFileWriter::Open(path);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w->Append("old").ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  {
    auto w = AtomicFileWriter::Open(path);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w->Append("new-but-abandoned").ok());
    w->Abort();
  }
  std::string back;
  ASSERT_TRUE(ReadFileToString(path, &back).ok());
  EXPECT_EQ(back, "old");
}

TEST_F(AtomicFileTest, DestructorWithoutCommitIsAbort) {
  const std::string path = Path("a.bin");
  { auto w = AtomicFileWriter::Open(path); ASSERT_TRUE(w.ok()); }
  EXPECT_FALSE(Exists(path));
}

TEST_F(AtomicFileTest, ReadMissingFileIsNotFound) {
  std::string out;
  EXPECT_EQ(ReadFileToString(Path("nope"), &out).code(), StatusCode::kNotFound);
}

TEST_F(AtomicFileTest, InjectedWriteErrorLeavesDestinationUntouched) {
  if (!faultfx::kEnabled) GTEST_SKIP() << "faultfx compiled out";
  const std::string path = Path("a.bin");
  {
    auto w = AtomicFileWriter::Open(path);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w->Append("stable").ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  faultfx::ScopedFault fault(faultfx::Site::kCkptWriteError, faultfx::Plan{});
  auto w = AtomicFileWriter::Open(path);
  ASSERT_TRUE(w.ok());
  Status st = w->Append("torn");
  if (st.ok()) st = w->Commit();
  EXPECT_FALSE(st.ok());
  std::string back;
  ASSERT_TRUE(ReadFileToString(path, &back).ok());
  EXPECT_EQ(back, "stable");
  EXPECT_GE(faultfx::Injector::Instance().fires(faultfx::Site::kCkptWriteError),
            1);
}

TEST_F(AtomicFileTest, InjectedShortWriteFailsCommit) {
  if (!faultfx::kEnabled) GTEST_SKIP() << "faultfx compiled out";
  const std::string path = Path("a.bin");
  faultfx::ScopedFault fault(faultfx::Site::kCkptShortWrite, faultfx::Plan{});
  auto w = AtomicFileWriter::Open(path);
  ASSERT_TRUE(w.ok());
  Status st = w->Append(std::string(4096, 'x'));
  if (st.ok()) st = w->Commit();
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(Exists(path));
}

TEST_F(AtomicFileTest, InjectedRenameErrorRemovesTempAndKeepsOld) {
  if (!faultfx::kEnabled) GTEST_SKIP() << "faultfx compiled out";
  const std::string path = Path("a.bin");
  {
    auto w = AtomicFileWriter::Open(path);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w->Append("v1").ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  faultfx::ScopedFault fault(faultfx::Site::kCkptRenameError, faultfx::Plan{});
  auto w = AtomicFileWriter::Open(path);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(w->Append("v2").ok());
  EXPECT_FALSE(w->Commit().ok());
  std::string back;
  ASSERT_TRUE(ReadFileToString(path, &back).ok());
  EXPECT_EQ(back, "v1");
}

}  // namespace
}  // namespace vcd::util
