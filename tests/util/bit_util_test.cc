#include "util/bit_util.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace vcd {
namespace {

TEST(PopCountTest, Basics) {
  EXPECT_EQ(PopCount64(0), 0);
  EXPECT_EQ(PopCount64(1), 1);
  EXPECT_EQ(PopCount64(~0ULL), 64);
  EXPECT_EQ(PopCount64(0x5555555555555555ULL), 32);
}

TEST(BitVectorTest, StartsAllZero) {
  BitVector v(130);
  EXPECT_EQ(v.size(), 130u);
  EXPECT_EQ(v.num_words(), 3u);
  EXPECT_EQ(v.CountOnes(), 0);
  for (size_t i = 0; i < v.size(); ++i) EXPECT_FALSE(v.Get(i));
}

TEST(BitVectorTest, SetGetClear) {
  BitVector v(100);
  v.Set(0);
  v.Set(63);
  v.Set(64);
  v.Set(99);
  EXPECT_TRUE(v.Get(0));
  EXPECT_TRUE(v.Get(63));
  EXPECT_TRUE(v.Get(64));
  EXPECT_TRUE(v.Get(99));
  EXPECT_FALSE(v.Get(1));
  EXPECT_EQ(v.CountOnes(), 4);
  v.Clear(63);
  EXPECT_FALSE(v.Get(63));
  EXPECT_EQ(v.CountOnes(), 3);
}

TEST(BitVectorTest, Reset) {
  BitVector v(64);
  for (size_t i = 0; i < 64; i += 3) v.Set(i);
  v.Reset();
  EXPECT_EQ(v.CountOnes(), 0);
}

TEST(BitVectorTest, OrWith) {
  BitVector a(128), b(128);
  a.Set(3);
  a.Set(70);
  b.Set(3);
  b.Set(100);
  a.OrWith(b);
  EXPECT_TRUE(a.Get(3));
  EXPECT_TRUE(a.Get(70));
  EXPECT_TRUE(a.Get(100));
  EXPECT_EQ(a.CountOnes(), 3);
}

TEST(BitVectorTest, ParityCountsSmall) {
  BitVector v(8);
  v.Set(0);  // even
  v.Set(1);  // odd
  v.Set(2);  // even
  v.Set(5);  // odd
  EXPECT_EQ(v.CountOnesWithParity(0), 2);
  EXPECT_EQ(v.CountOnesWithParity(1), 2);
}

TEST(BitVectorTest, ParityCountsIgnoreBitsBeyondSize) {
  // 66 bits: the last word is partially used; parity counts must mask it.
  BitVector v(66);
  v.Set(64);
  v.Set(65);
  EXPECT_EQ(v.CountOnesWithParity(0), 1);
  EXPECT_EQ(v.CountOnesWithParity(1), 1);
}

TEST(BitVectorTest, ParityCountsMatchBruteForce) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 1 + rng.Uniform(300);
    BitVector v(n);
    int expect[2] = {0, 0};
    for (size_t i = 0; i < n; ++i) {
      if (rng.Bernoulli(0.4)) {
        v.Set(i);
        ++expect[i % 2];
      }
    }
    EXPECT_EQ(v.CountOnesWithParity(0), expect[0]) << "n=" << n;
    EXPECT_EQ(v.CountOnesWithParity(1), expect[1]) << "n=" << n;
  }
}

TEST(BitVectorTest, Equality) {
  BitVector a(10), b(10), c(11);
  EXPECT_TRUE(a == b);
  b.Set(5);
  EXPECT_FALSE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(BitVectorTest, EmptyVector) {
  BitVector v(0);
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.CountOnes(), 0);
  EXPECT_EQ(v.CountOnesWithParity(0), 0);
  EXPECT_EQ(v.CountOnesWithParity(1), 0);
}

}  // namespace
}  // namespace vcd
