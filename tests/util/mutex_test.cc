#include "util/mutex.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "util/lock_rank.h"

/// Tests of the ranked-mutex runtime deadlock checker (DESIGN.md §14):
/// death on rank inversion / equal-rank nesting / self-recursion /
/// off-thread release, and the held-lock-stack bookkeeping around the
/// CondVar adopt/release dance. Everything checker-specific skips when
/// VCD_DEADLOCK_CHECK compiled the bookkeeping out (release builds).

namespace vcd {
namespace {

using std::chrono::milliseconds;

#define SKIP_WITHOUT_DEADLOCK_CHECK()                                        \
  do {                                                                       \
    if (!deadlock::kEnabled) {                                               \
      GTEST_SKIP() << "VCD_DEADLOCK_CHECK is compiled out in this build";    \
    }                                                                        \
  } while (0)

TEST(MutexRankTest, WellOrderedAcquisitionSucceeds) {
  SKIP_WITHOUT_DEADLOCK_CHECK();
  Mutex control{LockRank::kExecutorControl, "t.control"};
  Mutex queue{LockRank::kQueue, "t.queue"};
  Mutex registry{LockRank::kMetricsRegistry, "t.registry"};

  EXPECT_EQ(deadlock::HeldCount(), 0);
  control.Lock();
  queue.Lock();
  registry.Lock();
  EXPECT_EQ(deadlock::HeldCount(), 3);
  EXPECT_TRUE(deadlock::Holds(control));
  EXPECT_TRUE(deadlock::Holds(queue));
  EXPECT_TRUE(deadlock::Holds(registry));
  registry.Unlock();
  queue.Unlock();
  control.Unlock();
  EXPECT_EQ(deadlock::HeldCount(), 0);
  EXPECT_FALSE(deadlock::Holds(control));
}

TEST(MutexRankTest, NonLifoReleaseIsLegal) {
  SKIP_WITHOUT_DEADLOCK_CHECK();
  Mutex outer{LockRank::kShard, "t.outer"};
  Mutex inner{LockRank::kLeaf, "t.inner"};
  outer.Lock();
  inner.Lock();
  outer.Unlock();  // released out of LIFO order — allowed
  EXPECT_TRUE(deadlock::Holds(inner));
  EXPECT_FALSE(deadlock::Holds(outer));
  inner.Unlock();
  EXPECT_EQ(deadlock::HeldCount(), 0);
}

TEST(MutexRankTest, SequentialSameRankIsLegal) {
  SKIP_WITHOUT_DEADLOCK_CHECK();
  // Peers of one rank (per-shard queues) are taken one after another,
  // never nested — that must stay legal.
  Mutex q1{LockRank::kQueue, "t.q1"};
  Mutex q2{LockRank::kQueue, "t.q2"};
  q1.Lock();
  q1.Unlock();
  q2.Lock();
  q2.Unlock();
  EXPECT_EQ(deadlock::HeldCount(), 0);
}

TEST(MutexRankTest, TryLockRecordsAndReleases) {
  SKIP_WITHOUT_DEADLOCK_CHECK();
  Mutex mu{LockRank::kLeaf, "t.try"};
  ASSERT_TRUE(mu.TryLock());
  EXPECT_TRUE(deadlock::Holds(mu));
  mu.Unlock();
  EXPECT_FALSE(deadlock::Holds(mu));
}

TEST(MutexRankTest, FailedTryLockLeavesStackUntouched) {
  SKIP_WITHOUT_DEADLOCK_CHECK();
  Mutex mu{LockRank::kLeaf, "t.contended"};
  mu.Lock();
  std::atomic<bool> tried{false};
  std::atomic<bool> got{true};
  std::thread t([&] {
    got = mu.TryLock();  // contended: fails, must not record a hold
    EXPECT_EQ(deadlock::HeldCount(), 0);
    tried = true;
  });
  t.join();
  EXPECT_TRUE(tried);
  EXPECT_FALSE(got);
  mu.Unlock();
}

TEST(MutexRankTest, RanksAreIntrospectable) {
  SKIP_WITHOUT_DEADLOCK_CHECK();
  Mutex mu{LockRank::kMonitor, "t.named"};
  EXPECT_EQ(mu.rank(), LockRank::kMonitor);
  EXPECT_STREQ(mu.name(), "t.named");
  EXPECT_STREQ(LockRankName(LockRank::kExecutorControl), "kExecutorControl");
  EXPECT_STREQ(LockRankName(LockRank::kLeaf), "kLeaf");
}

// --- death tests ----------------------------------------------------------

TEST(MutexRankDeathTest, RankInversionDies) {
  SKIP_WITHOUT_DEADLOCK_CHECK();
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex registry{LockRank::kMetricsRegistry, "t.registry"};
  Mutex control{LockRank::kExecutorControl, "t.control"};
  registry.Lock();
  // Acquiring the (outer) control rank while holding the (inner) registry
  // rank is the canonical inversion; the checker must name both locks.
  EXPECT_DEATH(control.Lock(),
               "lock-order inversion.*t\\.control.*kExecutorControl.*"
               "t\\.registry.*kMetricsRegistry");
  registry.Unlock();
}

TEST(MutexRankDeathTest, EqualRankNestingDies) {
  SKIP_WITHOUT_DEADLOCK_CHECK();
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex q1{LockRank::kQueue, "t.q1"};
  Mutex q2{LockRank::kQueue, "t.q2"};
  q1.Lock();
  EXPECT_DEATH(q2.Lock(), "lock-order inversion.*t\\.q2.*t\\.q1");
  q1.Unlock();
}

TEST(MutexRankDeathTest, SelfRecursiveLockDies) {
  SKIP_WITHOUT_DEADLOCK_CHECK();
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex mu{LockRank::kLeaf, "t.self"};
  mu.Lock();
  EXPECT_DEATH(mu.Lock(), "self-recursive acquisition.*t\\.self");
  mu.Unlock();
}

TEST(MutexRankDeathTest, SelfRecursiveTryLockDies) {
  SKIP_WITHOUT_DEADLOCK_CHECK();
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex mu{LockRank::kLeaf, "t.selftry"};
  mu.Lock();
  EXPECT_DEATH((void)mu.TryLock(), "self-recursive acquisition.*t\\.selftry");
  mu.Unlock();
}

TEST(MutexRankDeathTest, ReleaseAcrossThreadsDies) {
  SKIP_WITHOUT_DEADLOCK_CHECK();
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Parenthesized construction: a brace-init comma would split the macro
  // argument list.
  EXPECT_DEATH(
      {
        Mutex mu(LockRank::kLeaf, "t.crossthread");
        mu.Lock();
        // The holder thread never releases; a second thread tries to — the
        // held-lock stack is per-thread, so that is a checker failure (and
        // undefined behavior on the underlying std::mutex).
        std::thread other([&mu] { mu.Unlock(); });
        other.join();
      },
      "t\\.crossthread.*released by a thread that does not hold it");
}

TEST(MutexRankDeathTest, DoubleUnlockDies) {
  SKIP_WITHOUT_DEADLOCK_CHECK();
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex mu(LockRank::kLeaf, "t.double");
        mu.Lock();
        mu.Unlock();
        mu.Unlock();
      },
      "t\\.double.*released by a thread that does not hold it");
}

// --- CondVar bookkeeping --------------------------------------------------

TEST(CondVarTest, WaitForKeepsHeldLockStack) {
  SKIP_WITHOUT_DEADLOCK_CHECK();
  // WaitFor internally adopts the mutex into a std::unique_lock, waits, and
  // releases the unique_lock without unlocking — the caller owns the mutex
  // throughout, and the held-lock stack must agree on both sides of that
  // dance (timeout path).
  Mutex mu{LockRank::kShard, "t.cv"};
  CondVar cv;
  mu.Lock();
  EXPECT_TRUE(deadlock::Holds(mu));
  EXPECT_EQ(deadlock::HeldCount(), 1);
  EXPECT_FALSE(cv.WaitFor(mu, milliseconds(5)));  // no notifier: times out
  EXPECT_TRUE(deadlock::Holds(mu));
  EXPECT_EQ(deadlock::HeldCount(), 1);
  // The surviving stack entry still participates in ordering: an inner
  // (lower-rank) acquisition is legal after the wait.
  Mutex leaf{LockRank::kLeaf, "t.cv_leaf"};
  leaf.Lock();
  EXPECT_EQ(deadlock::HeldCount(), 2);
  leaf.Unlock();
  mu.Unlock();
  EXPECT_EQ(deadlock::HeldCount(), 0);
}

TEST(CondVarTest, NotifiedWaitKeepsHeldLockStack) {
  SKIP_WITHOUT_DEADLOCK_CHECK();
  // Same invariant on the notified (no-timeout) path of Wait, with a real
  // producer thread taking the mutex while the waiter is blocked.
  Mutex mu{LockRank::kShard, "t.cv2"};
  CondVar cv;
  bool ready = false;  // guarded by mu
  std::thread producer([&] {
    MutexLock lock(mu);
    ready = true;
    cv.NotifyOne();
  });
  mu.Lock();
  cv.Wait(mu, [&] { return ready; });
  EXPECT_TRUE(deadlock::Holds(mu));
  EXPECT_EQ(deadlock::HeldCount(), 1);
  mu.Unlock();
  producer.join();
}

TEST(CondVarDeathTest, WaitWithoutHoldingDies) {
  SKIP_WITHOUT_DEADLOCK_CHECK();
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex mu(LockRank::kLeaf, "t.cv_unheld");
        CondVar cv;
        (void)cv.WaitFor(mu, milliseconds(1));  // never locked: misuse
      },
      "CondVar wait on lock.*t\\.cv_unheld.*does not hold");
}

// --- compiled-out mode ----------------------------------------------------

TEST(MutexTest, RankedConstructorCompilesInEveryMode) {
  // The two-argument constructor must exist whether or not the checker is
  // compiled in, so annotated declarations build identically everywhere.
  Mutex mu{LockRank::kQueue, "t.always"};
  mu.Lock();
  mu.Unlock();
  MutexLock lock(mu);
  if (!deadlock::kEnabled) {
    EXPECT_EQ(deadlock::HeldCount(), 0);
    EXPECT_FALSE(deadlock::Holds(mu));
  }
}

}  // namespace
}  // namespace vcd
