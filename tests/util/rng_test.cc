#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace vcd {
namespace {

TEST(SplitMix64Test, DeterministicPerSeed) {
  SplitMix64 a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(SplitMix64Test, ZeroSeedStillMixes) {
  SplitMix64 a(0);
  EXPECT_NE(a.Next(), 0u);
  EXPECT_NE(a.Next(), a.Next());
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.Next() == b.Next());
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.Uniform(17), 17u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformDoubleMeanIsHalf) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.UniformDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformBoundedMeanMatches) {
  Rng rng(13);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Uniform(100));
  EXPECT_NEAR(sum / n, 49.5, 1.0);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, GaussianTailsExist) {
  Rng rng(19);
  int beyond2 = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) beyond2 += (std::fabs(rng.Gaussian()) > 2.0);
  // P(|Z| > 2) ≈ 4.55 %.
  EXPECT_NEAR(static_cast<double>(beyond2) / n, 0.0455, 0.01);
}

TEST(RngTest, BernoulliProbability) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, NoShortCycles) {
  Rng rng(29);
  std::set<uint64_t> seen;
  for (int i = 0; i < 10000; ++i) EXPECT_TRUE(seen.insert(rng.Next()).second);
}

}  // namespace
}  // namespace vcd
