#include "util/stats.h"

#include <gtest/gtest.h>

namespace vcd {
namespace {

TEST(RunningStatsTest, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, NegativeValues) {
  RunningStats s;
  s.Add(-3.0);
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(RunningStatsTest, LargeStreamStable) {
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.Add(1e6 + (i % 2));  // mean 1e6 + 0.5
  EXPECT_NEAR(s.mean(), 1e6 + 0.5, 1e-6);
  EXPECT_NEAR(s.variance(), 0.25, 1e-4);
}

TEST(RunningStatsTest, MergeEqualsSequentialAdds) {
  // Merging shard-local accumulators must equal one accumulator that saw
  // every observation (the parallel executor aggregates per-shard stats).
  RunningStats whole, left, right, empty;
  for (int i = 0; i < 40; ++i) {
    const double x = 0.25 * i - 3.0;
    whole.Add(x);
    (i < 17 ? left : right).Add(x);
  }
  left.Merge(right);
  left.Merge(empty);  // merging an empty accumulator is a no-op
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.sum(), whole.sum());
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());

  RunningStats into_empty;
  into_empty.Merge(whole);
  EXPECT_EQ(into_empty.count(), whole.count());
  EXPECT_DOUBLE_EQ(into_empty.mean(), whole.mean());
}

TEST(PrecisionRecallTest, F1Harmonic) {
  PrecisionRecall pr{0.5, 1.0};
  EXPECT_NEAR(pr.F1(), 2.0 * 0.5 * 1.0 / 1.5, 1e-12);
}

TEST(PrecisionRecallTest, F1ZeroWhenBothZero) {
  PrecisionRecall pr{0.0, 0.0};
  EXPECT_EQ(pr.F1(), 0.0);
}

TEST(PrecisionRecallTest, F1PerfectScore) {
  PrecisionRecall pr{1.0, 1.0};
  EXPECT_DOUBLE_EQ(pr.F1(), 1.0);
}

}  // namespace
}  // namespace vcd
