#include "util/table_printer.h"

#include <gtest/gtest.h>

namespace vcd {
namespace {

TEST(TablePrinterTest, HeaderOnly) {
  TablePrinter t({"a", "bb"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("bb"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(TablePrinterTest, RowsAligned) {
  TablePrinter t({"name", "v"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer", "22"});
  std::string s = t.ToString();
  // Each line should contain the cells; the 'v' column should start at the
  // same offset on every row.
  size_t h = s.find("v");
  size_t r1 = s.find("1");
  size_t line1_start = s.find("x");
  size_t line1 = s.rfind('\n', r1);
  EXPECT_EQ(r1 - (line1 + 1), h);
  (void)line1_start;
}

TEST(TablePrinterTest, ShortRowsTolerated) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"only"});
  EXPECT_NO_FATAL_FAILURE(t.ToString());
}

TEST(TablePrinterTest, FmtDouble) {
  EXPECT_EQ(TablePrinter::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Fmt(0.5, 3), "0.500");
  EXPECT_EQ(TablePrinter::Fmt(-1.0, 1), "-1.0");
}

TEST(TablePrinterTest, FmtInt) {
  EXPECT_EQ(TablePrinter::Fmt(int64_t{42}), "42");
  EXPECT_EQ(TablePrinter::Fmt(int64_t{-7}), "-7");
}

TEST(TablePrinterTest, EndsWithNewline) {
  TablePrinter t({"h"});
  t.AddRow({"r"});
  std::string s = t.ToString();
  ASSERT_FALSE(s.empty());
  EXPECT_EQ(s.back(), '\n');
}

}  // namespace
}  // namespace vcd
