#include "util/crc32c.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

namespace vcd::util {
namespace {

TEST(Crc32cTest, KnownAnswerVectors) {
  // RFC 3720 §B.4 test vectors for CRC-32C.
  const char digits[] = "123456789";
  EXPECT_EQ(Crc32c(digits, 9), 0xE3069283u);

  std::vector<uint8_t> zeros(32, 0x00);
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);

  std::vector<uint8_t> ones(32, 0xFF);
  EXPECT_EQ(Crc32c(ones.data(), ones.size()), 0x62A8AB43u);

  std::vector<uint8_t> ascending(32);
  for (size_t i = 0; i < ascending.size(); ++i) {
    ascending[i] = static_cast<uint8_t>(i);
  }
  EXPECT_EQ(Crc32c(ascending.data(), ascending.size()), 0x46DD794Eu);
}

TEST(Crc32cTest, EmptyInputIsZero) {
  EXPECT_EQ(Crc32c(nullptr, 0), 0u);
  EXPECT_EQ(Crc32c("x", 0), 0u);
}

TEST(Crc32cTest, IncrementalMatchesOneShot) {
  std::string data(1027, '\0');  // odd length exercises the tail loop
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<char>((i * 131) ^ (i >> 3));
  }
  const uint32_t whole = Crc32c(data.data(), data.size());
  for (size_t split : {size_t{0}, size_t{1}, size_t{7}, size_t{8}, size_t{512},
                       data.size() - 1, data.size()}) {
    uint32_t crc = Crc32c(0, data.data(), split);
    crc = Crc32c(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, whole) << "split at " << split;
  }
}

TEST(Crc32cTest, SingleBitFlipChangesChecksum) {
  std::string data(256, 'a');
  const uint32_t base = Crc32c(data.data(), data.size());
  for (size_t byte : {size_t{0}, size_t{128}, size_t{255}}) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = data;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      EXPECT_NE(Crc32c(flipped.data(), flipped.size()), base)
          << "byte " << byte << " bit " << bit;
    }
  }
}

}  // namespace
}  // namespace vcd::util
