#include "util/check.h"

#include <gtest/gtest.h>

#include "util/status.h"

namespace vcd {
namespace {

TEST(CheckTest, PassingFormsDoNotAbort) {
  VCD_CHECK(true);
  VCD_CHECK(2 > 1, "with a message " << 42);
  VCD_CHECK_OK(Status::OK());
  VCD_CHECK_EQ(3, 3);
  VCD_CHECK_NE(3, 4);
  VCD_CHECK_LT(3, 4);
  VCD_CHECK_LE(3, 3);
  VCD_CHECK_GT(4, 3);
  VCD_CHECK_GE(4, 4, "annotated " << "too");
}

TEST(CheckTest, OperandsEvaluatedExactlyOnce) {
  int calls = 0;
  auto next = [&calls]() { return ++calls; };
  VCD_CHECK_LE(next(), 10);
  EXPECT_EQ(calls, 1);
  VCD_CHECK(next() == 2);
  EXPECT_EQ(calls, 2);
}

TEST(CheckDeathTest, BareCheckPrintsExpression) {
  EXPECT_DEATH(VCD_CHECK(1 == 2), "CHECK failed: 1 == 2");
}

TEST(CheckDeathTest, MessageFormIncludesStreamedContext) {
  EXPECT_DEATH(VCD_CHECK(false, "ctx " << 7), "CHECK failed: false.*ctx 7");
}

TEST(CheckDeathTest, CheckEqPrintsBothValues) {
  const int a = 3, b = 4;
  EXPECT_DEATH(VCD_CHECK_EQ(a, b), "CHECK failed: a == b \\(3 vs 4\\)");
}

TEST(CheckDeathTest, CheckLtPrintsBothValues) {
  EXPECT_DEATH(VCD_CHECK_LT(9, 2), "\\(9 vs 2\\)");
}

TEST(CheckDeathTest, CheckOkPrintsStatusText) {
  EXPECT_DEATH(VCD_CHECK_OK(Status::Internal("row truncated")),
               "CHECK failed:.*row truncated");
}

#ifndef NDEBUG
TEST(CheckDeathTest, DcheckFiresInDebugBuilds) {
  EXPECT_DEATH(VCD_DCHECK_EQ(1, 2), "CHECK failed");
}
#else
TEST(CheckTest, DcheckCompilesAwayUnderNdebug) {
  // Under NDEBUG the DCHECK forms must neither abort nor evaluate operands.
  int calls = 0;
  auto next = [&calls]() { return ++calls; };
  (void)next;  // referenced only inside the compiled-away macro below
  VCD_DCHECK(false, "never printed");
  VCD_DCHECK_EQ(next(), 99);
  EXPECT_EQ(calls, 0);
}
#endif

}  // namespace
}  // namespace vcd
