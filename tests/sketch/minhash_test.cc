#include "sketch/minhash.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "sketch/jaccard.h"
#include "util/rng.h"

namespace vcd::sketch {
namespace {

using features::CellId;

std::vector<CellId> RandomSet(Rng* rng, size_t n, uint32_t universe) {
  std::set<CellId> s;
  while (s.size() < n) s.insert(static_cast<CellId>(rng->Uniform(universe)));
  return {s.begin(), s.end()};
}

TEST(MinHashFamilyTest, CreateValidation) {
  EXPECT_TRUE(MinHashFamily::Create(1).ok());
  EXPECT_TRUE(MinHashFamily::Create(800).ok());
  EXPECT_FALSE(MinHashFamily::Create(0).ok());
  EXPECT_FALSE(MinHashFamily::Create(-5).ok());
}

TEST(MinHashFamilyTest, DeterministicPerSeed) {
  auto a = MinHashFamily::Create(16, 1).value();
  auto b = MinHashFamily::Create(16, 1).value();
  auto c = MinHashFamily::Create(16, 2).value();
  for (int fn = 0; fn < 16; ++fn) {
    EXPECT_EQ(a.Hash(fn, 123), b.Hash(fn, 123));
    EXPECT_NE(a.Hash(fn, 123), c.Hash(fn, 123));
  }
}

TEST(MinHashFamilyTest, FunctionsAreIndependent) {
  auto fam = MinHashFamily::Create(8, 3).value();
  std::set<uint64_t> values;
  for (int fn = 0; fn < 8; ++fn) values.insert(fam.Hash(fn, 42));
  EXPECT_EQ(values.size(), 8u);
}

TEST(MinHashFamilyTest, MinWiseUniformity) {
  // Over a fixed set X, each element should win the min with probability
  // ≈ 1/|X| (Theorem 1's defining property), measured across functions.
  const int k = 4000;
  auto fam = MinHashFamily::Create(k, 7).value();
  std::vector<CellId> x = {5, 99, 1234, 5000, 9999};
  std::vector<int> wins(x.size(), 0);
  for (int fn = 0; fn < k; ++fn) {
    size_t arg = 0;
    uint64_t best = ~0ULL;
    for (size_t i = 0; i < x.size(); ++i) {
      uint64_t h = fam.Hash(fn, x[i]);
      if (h < best) {
        best = h;
        arg = i;
      }
    }
    ++wins[arg];
  }
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(wins[i]) / k, 1.0 / x.size(), 0.03)
        << "element " << x[i];
  }
}

TEST(SketcherTest, EmptySketchIsAllMax) {
  auto fam = MinHashFamily::Create(8).value();
  Sketcher sk(&fam);
  Sketch s = sk.Empty();
  EXPECT_EQ(s.K(), 8);
  for (uint64_t v : s.mins) EXPECT_EQ(v, ~0ULL);
}

TEST(SketcherTest, AddLowersMins) {
  auto fam = MinHashFamily::Create(8).value();
  Sketcher sk(&fam);
  Sketch s = sk.Empty();
  sk.Add(&s, 42);
  for (int fn = 0; fn < 8; ++fn) {
    EXPECT_EQ(s.mins[static_cast<size_t>(fn)], fam.Hash(fn, 42));
  }
}

TEST(SketcherTest, OrderIndependence) {
  auto fam = MinHashFamily::Create(32).value();
  Sketcher sk(&fam);
  std::vector<CellId> ids = {9, 1, 5, 3, 7};
  Sketch a = sk.FromSequence(ids);
  std::vector<CellId> rev(ids.rbegin(), ids.rend());
  Sketch b = sk.FromSequence(rev);
  EXPECT_EQ(a, b);
}

TEST(SketcherTest, DuplicatesDoNotMatter) {
  auto fam = MinHashFamily::Create(32).value();
  Sketcher sk(&fam);
  Sketch a = sk.FromSequence({1, 2, 3});
  Sketch b = sk.FromSequence({1, 1, 2, 2, 3, 3, 3});
  EXPECT_EQ(a, b);
}

TEST(SketcherTest, CombineEqualsUnionSketch) {
  // Property 1: sketch(A ∪ B) = min(sketch(A), sketch(B)), tested exactly.
  Rng rng(11);
  auto fam = MinHashFamily::Create(64).value();
  Sketcher sk(&fam);
  for (int trial = 0; trial < 20; ++trial) {
    auto a = RandomSet(&rng, 20, 10000);
    auto b = RandomSet(&rng, 30, 10000);
    std::vector<CellId> uni = a;
    uni.insert(uni.end(), b.begin(), b.end());
    Sketch sa = sk.FromSequence(a);
    Sketch sb = sk.FromSequence(b);
    Sketch su = sk.FromSequence(uni);
    Sketcher::Combine(&sa, sb);
    EXPECT_EQ(sa, su);
  }
}

TEST(SketcherTest, SimilarityIdenticalSetsIsOne) {
  auto fam = MinHashFamily::Create(100).value();
  Sketcher sk(&fam);
  Sketch a = sk.FromSequence({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(Sketcher::Similarity(a, a), 1.0);
}

TEST(SketcherTest, SimilarityDisjointSetsNearZero) {
  auto fam = MinHashFamily::Create(500).value();
  Sketcher sk(&fam);
  Rng rng(13);
  Sketch a = sk.FromSequence(RandomSet(&rng, 50, 5000));
  std::vector<CellId> shifted;
  for (CellId id : RandomSet(&rng, 50, 5000)) shifted.push_back(id + 10000);
  Sketch b = sk.FromSequence(shifted);
  EXPECT_LT(Sketcher::Similarity(a, b), 0.02);
}

TEST(SketcherTest, EstimatorTracksExactJaccard) {
  // Property-style test: across random set pairs with varied overlap, the
  // K=1000 estimate stays within ~5 points of the exact Jaccard.
  Rng rng(17);
  auto fam = MinHashFamily::Create(1000, 99).value();
  Sketcher sk(&fam);
  for (int trial = 0; trial < 15; ++trial) {
    const size_t common = 5 + rng.Uniform(60);
    const size_t only_a = rng.Uniform(60);
    const size_t only_b = rng.Uniform(60);
    auto shared = RandomSet(&rng, common, 100000);
    std::vector<CellId> a = shared, b = shared;
    for (CellId id : RandomSet(&rng, only_a + 1, 100000)) a.push_back(id + 200000);
    for (CellId id : RandomSet(&rng, only_b + 1, 100000)) b.push_back(id + 400000);
    const double exact = JaccardSimilarity(a, b);
    const double est = Sketcher::Similarity(sk.FromSequence(a), sk.FromSequence(b));
    EXPECT_NEAR(est, exact, 0.055) << "trial " << trial;
  }
}

TEST(SketcherTest, NumEqualCountsPositions) {
  auto fam = MinHashFamily::Create(16).value();
  Sketcher sk(&fam);
  Sketch a = sk.FromSequence({1, 2, 3});
  Sketch b = a;
  b.mins[0] = 0;  // force one mismatch
  EXPECT_EQ(Sketcher::NumEqual(a, b), 15);
}

/// Estimator variance shrinks like 1/K (binomial): parameterized sanity
/// sweep over K.
class MinHashKSweep : public ::testing::TestWithParam<int> {};

TEST_P(MinHashKSweep, EstimateWithinBinomialBound) {
  const int k = GetParam();
  Rng rng(23);
  auto fam = MinHashFamily::Create(k, 5).value();
  Sketcher sk(&fam);
  auto shared = RandomSet(&rng, 40, 100000);
  std::vector<CellId> a = shared, b = shared;
  for (CellId id : RandomSet(&rng, 20, 100000)) a.push_back(id + 200000);
  for (CellId id : RandomSet(&rng, 20, 100000)) b.push_back(id + 400000);
  const double exact = JaccardSimilarity(a, b);
  const double est = Sketcher::Similarity(sk.FromSequence(a), sk.FromSequence(b));
  const double sigma = std::sqrt(exact * (1 - exact) / k);
  EXPECT_NEAR(est, exact, 5 * sigma + 1e-9) << "K=" << k;
}

INSTANTIATE_TEST_SUITE_P(K, MinHashKSweep,
                         ::testing::Values(100, 200, 400, 800, 1600, 3000));

TEST(SketcherValidateTest, AcceptsRealCombine) {
  Rng rng(7);
  auto fam = MinHashFamily::Create(16, 3).value();
  Sketcher sk(&fam);
  Sketch a = sk.FromSequence(RandomSet(&rng, 30, 5000));
  Sketch b = sk.FromSequence(RandomSet(&rng, 30, 5000));
  Sketch combined = a;
  Sketcher::Combine(&combined, b);
  EXPECT_TRUE(Sketcher::ValidateCombined(combined, a, b).ok());
}

TEST(SketcherValidateTest, ReportsCorruptedCombine) {
  Rng rng(8);
  auto fam = MinHashFamily::Create(16, 3).value();
  Sketcher sk(&fam);
  Sketch a = sk.FromSequence(RandomSet(&rng, 30, 5000));
  Sketch b = sk.FromSequence(RandomSet(&rng, 30, 5000));
  Sketch combined = a;
  Sketcher::Combine(&combined, b);
  // Raise one position above the true minimum — Property 1 forbids this.
  combined.mins[4] = combined.mins[4] + 1;
  Status st = Sketcher::ValidateCombined(combined, a, b);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("Property 1"), std::string::npos);
}

TEST(SketcherValidateTest, ReportsSizeMismatch) {
  Sketch a, b, c;
  a.mins = {1, 2};
  b.mins = {1, 2};
  c.mins = {1};
  EXPECT_FALSE(Sketcher::ValidateCombined(c, a, b).ok());
}

}  // namespace
}  // namespace vcd::sketch
