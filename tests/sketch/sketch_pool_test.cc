#include "sketch/sketch_pool.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "sketch/minhash.h"
#include "util/rng.h"

namespace vcd::sketch {
namespace {

Sketch RandomSketch(int k, Rng* rng) {
  Sketch sk;
  sk.mins.reserve(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) sk.mins.push_back(rng->Uniform(4));
  return sk;
}

TEST(SketchPoolTest, AllocateYieldsEmptySketch) {
  SketchPool pool(8);
  const SketchPool::Handle h = pool.Allocate();
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(pool.mins(h)[i], std::numeric_limits<uint64_t>::max());
  }
  EXPECT_EQ(pool.live_count(), 1u);
  EXPECT_TRUE(pool.Validate().ok());
}

TEST(SketchPoolTest, AssignAndToSketchRoundTrip) {
  Rng rng(3);
  const int k = 50;
  SketchPool pool(k);
  const Sketch sk = RandomSketch(k, &rng);
  const SketchPool::Handle h = pool.Allocate();
  pool.Assign(h, sk);
  EXPECT_EQ(pool.ToSketch(h), sk);
}

TEST(SketchPoolTest, CombineMinMatchesScalarCombine) {
  Rng rng(17);
  const int k = 75;
  SketchPool pool(k);
  for (int trial = 0; trial < 20; ++trial) {
    const Sketch a = RandomSketch(k, &rng);
    const Sketch b = RandomSketch(k, &rng);
    const SketchPool::Handle ha = pool.Allocate();
    const SketchPool::Handle hb = pool.Allocate();
    pool.Assign(ha, a);
    pool.Assign(hb, b);
    pool.CombineMin(ha, hb);
    Sketch ref = a;
    Sketcher::Combine(&ref, b);
    EXPECT_EQ(pool.ToSketch(ha), ref);
    EXPECT_TRUE(Sketcher::ValidateCombined(pool.ToSketch(ha), a, b).ok());
    pool.Free(ha);
    pool.Free(hb);
  }
  EXPECT_TRUE(pool.Validate().ok());
}

TEST(SketchPoolTest, NumEqualMatchesScalarSimilarity) {
  Rng rng(23);
  const int k = 120;
  SketchPool pool(k);
  for (int trial = 0; trial < 20; ++trial) {
    const Sketch a = RandomSketch(k, &rng);
    const Sketch q = RandomSketch(k, &rng);
    const SketchPool::Handle h = pool.Allocate();
    pool.Assign(h, a);
    EXPECT_EQ(pool.NumEqualAgainst(h, q), Sketcher::NumEqual(a, q));
    EXPECT_DOUBLE_EQ(pool.SimilarityAgainst(h, q), Sketcher::Similarity(a, q));
    pool.Free(h);
  }
}

TEST(SketchPoolTest, CopyDuplicatesSlot) {
  Rng rng(31);
  const int k = 33;
  SketchPool pool(k);
  const Sketch sk = RandomSketch(k, &rng);
  const SketchPool::Handle a = pool.Allocate();
  pool.Assign(a, sk);
  const SketchPool::Handle b = pool.Allocate();
  pool.Copy(b, a);
  EXPECT_EQ(pool.ToSketch(b), sk);
  // Copies are independent.
  pool.mins(a)[0] = 12345;
  EXPECT_EQ(pool.ToSketch(b), sk);
}

TEST(SketchPoolTest, FreeListReusesSlotsWithoutGrowth) {
  SketchPool pool(16);
  const SketchPool::Handle a = pool.Allocate();
  const SketchPool::Handle b = pool.Allocate();
  EXPECT_EQ(pool.capacity(), 2u);
  pool.Free(b);
  const SketchPool::Handle c = pool.Allocate();
  EXPECT_EQ(c, b) << "freed slot must be reused";
  EXPECT_EQ(pool.capacity(), 2u) << "reuse must not grow the slab";
  // Reused slots are re-initialized to the empty sketch.
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(pool.mins(c)[i], std::numeric_limits<uint64_t>::max());
  }
  EXPECT_TRUE(pool.IsLive(a));
  EXPECT_TRUE(pool.Validate().ok());
}

TEST(SketchPoolTest, HandlesSurviveSlabGrowth) {
  Rng rng(41);
  const int k = 60;
  SketchPool pool(k);
  const Sketch sk = RandomSketch(k, &rng);
  const SketchPool::Handle first = pool.Allocate();
  pool.Assign(first, sk);
  std::vector<SketchPool::Handle> extra;
  for (int i = 0; i < 5000; ++i) extra.push_back(pool.Allocate());
  EXPECT_EQ(pool.ToSketch(first), sk)
      << "slot contents must survive slab reallocation";
  for (SketchPool::Handle h : extra) pool.Free(h);
  EXPECT_EQ(pool.live_count(), 1u);
  EXPECT_TRUE(pool.Validate().ok());
}

}  // namespace
}  // namespace vcd::sketch
