#include "sketch/bit_signature.h"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.h"

namespace vcd::sketch {
namespace {

Sketch MakeSketch(std::vector<uint64_t> mins) {
  Sketch s;
  s.mins = std::move(mins);
  return s;
}

TEST(BitSignatureTest, EncodingRules) {
  // cand > query → no bits; cand = query → even bit; cand < query → both.
  Sketch cand = MakeSketch({9, 5, 2});
  Sketch query = MakeSketch({5, 5, 5});
  BitSignature sig = BitSignature::FromSketches(cand, query);
  // position 0: 9 > 5 → (0,0)
  EXPECT_FALSE(sig.bits().Get(0));
  EXPECT_FALSE(sig.bits().Get(1));
  // position 1: 5 = 5 → (1,0)
  EXPECT_TRUE(sig.bits().Get(2));
  EXPECT_FALSE(sig.bits().Get(3));
  // position 2: 2 < 5 → (1,1)
  EXPECT_TRUE(sig.bits().Get(4));
  EXPECT_TRUE(sig.bits().Get(5));
}

TEST(BitSignatureTest, CountsAndSimilarity) {
  Sketch cand = MakeSketch({9, 5, 2, 7, 7});
  Sketch query = MakeSketch({5, 5, 5, 7, 9});
  BitSignature sig = BitSignature::FromSketches(cand, query);
  // relations: >, =, <, =, <
  EXPECT_EQ(sig.NumEqual(), 2);
  EXPECT_EQ(sig.NumLess(), 2);
  EXPECT_DOUBLE_EQ(sig.Similarity(), 2.0 / 5.0);
}

TEST(BitSignatureTest, Lemma1MatchesSketchSimilarity) {
  // sim from the bit signature must equal the fraction of equal min-hash
  // values — the losslessness claim of §V-A.
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const int k = 1 + static_cast<int>(rng.Uniform(200));
    Sketch cand, query;
    for (int i = 0; i < k; ++i) {
      cand.mins.push_back(rng.Uniform(20));
      query.mins.push_back(rng.Uniform(20));
    }
    BitSignature sig = BitSignature::FromSketches(cand, query);
    EXPECT_DOUBLE_EQ(sig.Similarity(), Sketcher::Similarity(cand, query)) << "K=" << k;
  }
}

TEST(BitSignatureTest, OrMergeEqualsSignatureOfMin) {
  // The heart of the representation: OR of the two candidates' signatures
  // equals the signature of their element-wise-min combination — for every
  // relation pair, per the merge table under Definition 3.
  Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    const int k = 16;
    Sketch a, b, query;
    for (int i = 0; i < k; ++i) {
      a.mins.push_back(rng.Uniform(10));
      b.mins.push_back(rng.Uniform(10));
      query.mins.push_back(rng.Uniform(10));
    }
    BitSignature sa = BitSignature::FromSketches(a, query);
    BitSignature sb = BitSignature::FromSketches(b, query);
    sa.OrWith(sb);
    Sketch combined = a;
    Sketcher::Combine(&combined, b);
    BitSignature expect = BitSignature::FromSketches(combined, query);
    EXPECT_TRUE(sa == expect) << "trial " << trial;
  }
}

TEST(BitSignatureTest, AllSixMergeCasesExplicit) {
  // min{>,>}=">", min{>,=}="=", min{>,<}="<", min{=,=}="=", min{=,<}="<",
  // min{<,<}="<" — exactly the paper's table.
  struct Case {
    uint64_t a, b;  // candidate values; query value fixed at 5
    int equal_bits; // expected NumEqual of merged 1-position signature
    int less_bits;  // expected NumLess
  };
  const Case cases[] = {
      {9, 8, 0, 0},  // >,> → >
      {9, 5, 1, 0},  // >,= → =
      {9, 3, 0, 1},  // >,< → <
      {5, 5, 1, 0},  // =,= → =
      {5, 3, 0, 1},  // =,< → <
      {2, 3, 0, 1},  // <,< → <
  };
  for (const Case& c : cases) {
    BitSignature sa(1), sb(1);
    sa.SetRelation(0, c.a, 5);
    sb.SetRelation(0, c.b, 5);
    sa.OrWith(sb);
    EXPECT_EQ(sa.NumEqual(), c.equal_bits) << c.a << "," << c.b;
    EXPECT_EQ(sa.NumLess(), c.less_bits) << c.a << "," << c.b;
  }
}

TEST(BitSignatureTest, EmptyCandidateIsAllGreater) {
  BitSignature sig(8);
  EXPECT_EQ(sig.NumEqual(), 0);
  EXPECT_EQ(sig.NumLess(), 0);
  EXPECT_DOUBLE_EQ(sig.Similarity(), 0.0);
}

TEST(BitSignatureTest, Lemma2Threshold) {
  // K=10, δ=0.7 → a candidate may carry at most 3 "<" positions.
  BitSignature sig(10);
  for (int r = 0; r < 3; ++r) sig.SetRelation(r, 1, 5);  // three "<"
  EXPECT_TRUE(sig.SatisfiesLemma2(0.7));
  sig.SetRelation(3, 1, 5);  // fourth "<"
  EXPECT_FALSE(sig.SatisfiesLemma2(0.7));
}

TEST(BitSignatureTest, Lemma2MonotoneUnderOr) {
  // Once violated, merging can never restore Lemma 2 (the basis for chain
  // pruning): NumLess only grows under OR.
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const int k = 20;
    BitSignature a(k), b(k);
    for (int r = 0; r < k; ++r) {
      a.SetRelation(r, rng.Uniform(10), rng.Uniform(10));
      b.SetRelation(r, rng.Uniform(10), rng.Uniform(10));
    }
    const int before = a.NumLess();
    a.OrWith(b);
    EXPECT_GE(a.NumLess(), before);
  }
}

TEST(BitSignatureTest, IsEqualAt) {
  Sketch cand = MakeSketch({9, 5, 2});
  Sketch query = MakeSketch({5, 5, 5});
  BitSignature sig = BitSignature::FromSketches(cand, query);
  EXPECT_FALSE(sig.IsEqualAt(0));
  EXPECT_TRUE(sig.IsEqualAt(1));
  EXPECT_FALSE(sig.IsEqualAt(2));
}

TEST(BitSignatureTest, SimilarityNeverExceedsOne) {
  Sketch a = MakeSketch({1, 1, 1, 1});
  BitSignature sig = BitSignature::FromSketches(a, a);
  EXPECT_DOUBLE_EQ(sig.Similarity(), 1.0);
  EXPECT_TRUE(sig.SatisfiesLemma2(1.0));
}

TEST(BitSignatureTest, Equality) {
  BitSignature a(4), b(4), c(5);
  EXPECT_TRUE(a == b);
  b.SetRelation(0, 1, 2);
  EXPECT_FALSE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(BitSignatureValidateTest, AcceptsBuiltAndMergedSignatures) {
  Sketch cand = MakeSketch({9, 5, 2});
  Sketch query = MakeSketch({5, 5, 5});
  BitSignature sig = BitSignature::FromSketches(cand, query);
  EXPECT_TRUE(sig.Validate().ok());
  BitSignature other = BitSignature::FromSketches(query, query);
  sig.OrWith(other);
  EXPECT_TRUE(sig.Validate().ok());
  EXPECT_TRUE(BitSignature(7).Validate().ok());  // all-">" is well-formed
}

TEST(BitSignatureValidateTest, ReportsImpossibleRelationPair) {
  Sketch cand = MakeSketch({9, 5, 2});
  Sketch query = MakeSketch({5, 5, 5});
  BitSignature sig = BitSignature::FromSketches(cand, query);
  ASSERT_TRUE(sig.Validate().ok());
  // Force (even=0, odd=1) at position 0: "cand < query but not cand ≤ query".
  sig.mutable_bits_for_test().Clear(0);
  sig.mutable_bits_for_test().Set(1);
  Status st = sig.Validate();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("(0,1)"), std::string::npos);
}

}  // namespace
}  // namespace vcd::sketch
