// Kernel-backend equivalence fuzz: every registered ISA level must produce
// byte-identical slabs and identical counts to the scalar reference, over
// randomized signatures, K values and batch shapes.
//
// The batch shapes deliberately cover both kernel regimes: consecutive
// ascending/descending handle runs (the steady-state detector pattern that
// takes the aligned full-row fast path) and shuffled handle sets (the
// gather/scalar fallback), plus sizes around the 4/8-slot vector pass
// boundaries so every tail path runs.

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "sketch/kernels/kernels.h"
#include "sketch/minhash.h"
#include "sketch/signature_pool.h"
#include "sketch/sketch_pool.h"
#include "util/rng.h"

namespace vcd::sketch {
namespace {

Sketch RandomSketch(Rng* rng, int k, uint64_t hi) {
  Sketch s;
  s.mins.reserve(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) s.mins.push_back(rng->Uniform(hi));
  return s;
}

// Handle batch in one of three shapes; `shape % 3`: 0 = ascending run,
// 1 = descending run, 2 = shuffled.
std::vector<uint32_t> MakeBatch(Rng* rng, uint32_t base, size_t n,
                                int shape) {
  std::vector<uint32_t> hs(n);
  std::iota(hs.begin(), hs.end(), base);
  if (shape % 3 == 1) {
    std::reverse(hs.begin(), hs.end());
  } else if (shape % 3 == 2) {
    for (size_t i = n; i > 1; --i) {
      std::swap(hs[i - 1], hs[rng->Uniform(i)]);
    }
  }
  return hs;
}

class KernelEquivalenceTest
    : public ::testing::TestWithParam<kernels::Isa> {
 protected:
  const kernels::KernelOps* ops() const {
    return kernels::OpsForIsa(GetParam());
  }
  const kernels::KernelOps* ref() const {
    return kernels::OpsForIsa(kernels::Isa::kScalar);
  }
};

// Both pools replay the same randomized build / or / scan sequence; slab
// words and all kernel outputs must match the scalar pool exactly.
TEST_P(KernelEquivalenceTest, SignatureOpsMatchScalar) {
  Rng rng(0x5eed0000 + static_cast<uint32_t>(GetParam()));
  for (int k : {1, 3, 16, 31, 64, 100, 256}) {
    SignaturePool test_pool(k, ops());
    SignaturePool ref_pool(k, ref());
    // Value range tight enough that "=", "<" and ">" relations all occur.
    const uint64_t hi = static_cast<uint64_t>(k) * 2 + 1;

    // Populate 3 full-ish blocks of slots plus a ragged tail.
    const size_t slots = 8 * 3 + 1 + rng.Uniform(6);
    const Sketch query = RandomSketch(&rng, k, hi);
    for (size_t i = 0; i < slots; ++i) {
      const uint32_t ht = test_pool.Allocate();
      const uint32_t hr = ref_pool.Allocate();
      ASSERT_EQ(ht, hr);
      const Sketch cand = RandomSketch(&rng, k, hi);
      test_pool.BuildFromSketches(ht, cand, query);
      ref_pool.BuildFromSketches(hr, cand, query);
    }
    const auto expect_slabs_equal = [&](const char* where) {
      for (uint32_t h = 0; h < slots; ++h) {
        for (size_t w = 0; w < test_pool.words_per_sig(); ++w) {
          ASSERT_EQ(test_pool.word(h, w), ref_pool.word(h, w))
              << where << ": K=" << k << " slot " << h << " word " << w;
        }
      }
    };
    expect_slabs_equal("after build");

    for (int round = 0; round < 8; ++round) {
      // Random disjoint dst/src batches of every shape, sized to straddle
      // the 4- and 8-slot vector pass widths.
      const size_t n = 1 + rng.Uniform(static_cast<uint64_t>(slots / 2));
      auto dst = MakeBatch(&rng, 0, n, round);
      auto src = MakeBatch(&rng, static_cast<uint32_t>(slots - n), n,
                           round + 1);
      std::vector<int> less_t(n, -1), less_r(n, -2);
      test_pool.OrRange(dst.data(), src.data(), n,
                        round % 2 == 0 ? less_t.data() : nullptr);
      ref_pool.OrRange(dst.data(), src.data(), n,
                       round % 2 == 0 ? less_r.data() : nullptr);
      if (round % 2 == 0) {
        EXPECT_EQ(less_t, less_r);
      }
      expect_slabs_equal("after or");

      auto all = MakeBatch(&rng, 0, slots, round);
      std::vector<int> eq_t(slots), eq_r(slots), nl_t(slots), nl_r(slots);
      test_pool.NumEqualBatch(all.data(), slots, eq_t.data(), nl_t.data());
      ref_pool.NumEqualBatch(all.data(), slots, eq_r.data(), nl_r.data());
      EXPECT_EQ(eq_t, eq_r);
      EXPECT_EQ(nl_t, nl_r);

      // Delta swept across the whole threshold range, including edge
      // values where ⌊K(1−δ)⌋ sits exactly on an attained NumLess.
      const double delta = rng.UniformDouble(0.0, 1.0);
      std::vector<uint8_t> pr_t(slots, 2), pr_r(slots, 3);
      const size_t ct =
          test_pool.PruneScan(all.data(), slots, delta, pr_t.data());
      const size_t cr =
          ref_pool.PruneScan(all.data(), slots, delta, pr_r.data());
      EXPECT_EQ(ct, cr);
      EXPECT_EQ(pr_t, pr_r);
    }
  }
}

TEST_P(KernelEquivalenceTest, SketchOpsMatchScalar) {
  Rng rng(0xcafe0000 + static_cast<uint32_t>(GetParam()));
  for (int k : {1, 5, 16, 64, 129}) {
    SketchPool test_pool(k, ops());
    SketchPool ref_pool(k, ref());
    const uint32_t a_t = test_pool.Allocate(), b_t = test_pool.Allocate();
    const uint32_t a_r = ref_pool.Allocate(), b_r = ref_pool.Allocate();
    for (int round = 0; round < 16; ++round) {
      const Sketch x = RandomSketch(&rng, k, 64);
      const Sketch y = RandomSketch(&rng, k, 64);
      test_pool.Assign(a_t, x);
      test_pool.Assign(b_t, y);
      ref_pool.Assign(a_r, x);
      ref_pool.Assign(b_r, y);
      test_pool.CombineMin(a_t, b_t);
      ref_pool.CombineMin(a_r, b_r);
      EXPECT_EQ(test_pool.ToSketch(a_t), ref_pool.ToSketch(a_r));
      const Sketch q = RandomSketch(&rng, k, 64);
      EXPECT_EQ(test_pool.NumEqualAgainst(a_t, q),
                ref_pool.NumEqualAgainst(a_r, q));
    }
  }
}

// Freed-and-reused slots must keep the batch kernels exact: handle batches
// over a pool whose free-list has recycled slots in both directions.
TEST_P(KernelEquivalenceTest, RecycledSlotsMatchScalar) {
  Rng rng(0xfeed0000 + static_cast<uint32_t>(GetParam()));
  const int k = 64;
  SignaturePool test_pool(k, ops());
  SignaturePool ref_pool(k, ref());
  const Sketch query = RandomSketch(&rng, k, 100);
  std::vector<uint32_t> live;
  for (int step = 0; step < 200; ++step) {
    if (live.size() > 24 && rng.Bernoulli(0.5)) {
      const size_t at = rng.Uniform(live.size());
      test_pool.Free(live[at]);
      ref_pool.Free(live[at]);
      live.erase(live.begin() + static_cast<long>(at));
    } else {
      const uint32_t ht = test_pool.Allocate();
      const uint32_t hr = ref_pool.Allocate();
      ASSERT_EQ(ht, hr);
      const Sketch cand = RandomSketch(&rng, k, 100);
      test_pool.BuildFromSketches(ht, cand, query);
      ref_pool.BuildFromSketches(hr, cand, query);
      live.push_back(ht);
    }
    if (live.size() >= 2 && step % 7 == 0) {
      std::vector<int> eq_t(live.size()), eq_r(live.size());
      std::vector<int> nl_t(live.size()), nl_r(live.size());
      test_pool.NumEqualBatch(live.data(), live.size(), eq_t.data(),
                              nl_t.data());
      ref_pool.NumEqualBatch(live.data(), live.size(), eq_r.data(),
                             nl_r.data());
      ASSERT_EQ(eq_t, eq_r) << "step " << step;
      ASSERT_EQ(nl_t, nl_r) << "step " << step;
    }
  }
  EXPECT_TRUE(test_pool.Validate().ok());
  EXPECT_TRUE(ref_pool.Validate().ok());
}

std::string IsaParamName(
    const ::testing::TestParamInfo<kernels::Isa>& info) {
  return kernels::IsaName(info.param);
}

INSTANTIATE_TEST_SUITE_P(AllIsas, KernelEquivalenceTest,
                         ::testing::ValuesIn(kernels::SupportedIsas()),
                         IsaParamName);

// Dispatch sanity: the table picked at startup is one of the supported
// levels and every registered level round-trips its name.
TEST(KernelDispatchTest, ActiveOpsIsSupported) {
  const kernels::KernelOps& active = kernels::ActiveOps();
  EXPECT_TRUE(kernels::IsaSupported(active.isa));
  for (kernels::Isa isa : kernels::SupportedIsas()) {
    kernels::Isa parsed;
    ASSERT_TRUE(kernels::ParseIsa(kernels::IsaName(isa), &parsed));
    EXPECT_EQ(parsed, isa);
    ASSERT_NE(kernels::OpsForIsa(isa), nullptr);
    EXPECT_EQ(kernels::OpsForIsa(isa)->isa, isa);
  }
  EXPECT_FALSE(kernels::IsaSupported(static_cast<kernels::Isa>(99)));
}

}  // namespace
}  // namespace vcd::sketch
