#include "sketch/jaccard.h"

#include <gtest/gtest.h>

namespace vcd::sketch {
namespace {

TEST(CellIdSetTest, FromSequenceDedupsAndSorts) {
  auto s = CellIdSet::FromSequence({5, 1, 5, 3, 1});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.ids(), (std::vector<features::CellId>{1, 3, 5}));
}

TEST(CellIdSetTest, Contains) {
  auto s = CellIdSet::FromSequence({2, 4, 6});
  EXPECT_TRUE(s.Contains(4));
  EXPECT_FALSE(s.Contains(5));
}

TEST(CellIdSetTest, EmptySet) {
  auto s = CellIdSet::FromSequence({});
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.Contains(1));
  EXPECT_EQ(s.Jaccard(s), 0.0);
}

TEST(CellIdSetTest, IntersectionSize) {
  auto a = CellIdSet::FromSequence({1, 2, 3, 4});
  auto b = CellIdSet::FromSequence({3, 4, 5, 6});
  EXPECT_EQ(a.IntersectionSize(b), 2u);
  EXPECT_EQ(b.IntersectionSize(a), 2u);
}

TEST(CellIdSetTest, JaccardKnownValues) {
  auto a = CellIdSet::FromSequence({1, 2, 3, 4});
  auto b = CellIdSet::FromSequence({3, 4, 5, 6});
  EXPECT_DOUBLE_EQ(a.Jaccard(b), 2.0 / 6.0);
  EXPECT_DOUBLE_EQ(a.Jaccard(a), 1.0);
}

TEST(CellIdSetTest, JaccardDisjoint) {
  auto a = CellIdSet::FromSequence({1, 2});
  auto b = CellIdSet::FromSequence({3, 4});
  EXPECT_DOUBLE_EQ(a.Jaccard(b), 0.0);
}

TEST(CellIdSetTest, JaccardSubset) {
  auto a = CellIdSet::FromSequence({1, 2, 3, 4});
  auto b = CellIdSet::FromSequence({2, 3});
  EXPECT_DOUBLE_EQ(a.Jaccard(b), 0.5);
}

TEST(JaccardSimilarityTest, SequencesWithDuplicates) {
  // Sequence order and multiplicity are irrelevant — Definition 2 is on
  // sets, which is what gives the method reorder robustness.
  std::vector<features::CellId> a = {1, 1, 2, 3, 3, 3};
  std::vector<features::CellId> b = {3, 2, 1};
  EXPECT_DOUBLE_EQ(JaccardSimilarity(a, b), 1.0);
}

TEST(JaccardSimilarityTest, ReorderInvariance) {
  std::vector<features::CellId> a = {10, 20, 30, 40, 50};
  std::vector<features::CellId> b = {50, 10, 40, 20, 30};
  EXPECT_DOUBLE_EQ(JaccardSimilarity(a, b), 1.0);
}

TEST(JaccardSimilarityTest, OneEmpty) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({1, 2}, {}), 0.0);
}

}  // namespace
}  // namespace vcd::sketch
