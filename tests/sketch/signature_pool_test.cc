#include "sketch/signature_pool.h"

#include <gtest/gtest.h>

#include <vector>

#include "sketch/bit_signature.h"
#include "util/rng.h"

namespace vcd::sketch {
namespace {

/// Random sketch over a small value alphabet so "=" positions actually occur.
Sketch RandomSketch(int k, Rng* rng) {
  Sketch sk;
  sk.mins.reserve(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) sk.mins.push_back(rng->Uniform(4));
  return sk;
}

TEST(SignaturePoolTest, BuildMatchesScalarReference) {
  Rng rng(42);
  for (int k : {1, 5, 31, 32, 33, 64, 128, 200}) {
    SignaturePool pool(k);
    for (int trial = 0; trial < 20; ++trial) {
      const Sketch cand = RandomSketch(k, &rng);
      const Sketch query = RandomSketch(k, &rng);
      const SignaturePool::Handle h = pool.Allocate();
      pool.BuildFromSketches(h, cand, query);
      const BitSignature ref = BitSignature::FromSketches(cand, query);
      EXPECT_EQ(pool.ToBitSignature(h), ref) << "k=" << k;
      EXPECT_EQ(pool.NumEqual(h), ref.NumEqual());
      EXPECT_EQ(pool.NumLess(h), ref.NumLess());
      EXPECT_DOUBLE_EQ(pool.Similarity(h), ref.Similarity());
      for (double delta : {0.3, 0.7, 0.95}) {
        EXPECT_EQ(pool.SatisfiesLemma2(h, delta), ref.SatisfiesLemma2(delta));
      }
      EXPECT_TRUE(pool.ToBitSignature(h).Validate().ok());
      pool.Free(h);
    }
    EXPECT_TRUE(pool.Validate().ok());
  }
}

TEST(SignaturePoolTest, OrMatchesScalarOrWith) {
  Rng rng(7);
  const int k = 100;
  SignaturePool pool(k);
  for (int trial = 0; trial < 20; ++trial) {
    const Sketch base = RandomSketch(k, &rng);
    const Sketch a = RandomSketch(k, &rng);
    const Sketch b = RandomSketch(k, &rng);
    const SignaturePool::Handle ha = pool.Allocate();
    const SignaturePool::Handle hb = pool.Allocate();
    pool.BuildFromSketches(ha, a, base);
    pool.BuildFromSketches(hb, b, base);
    BitSignature ref = BitSignature::FromSketches(a, base);
    ref.OrWith(BitSignature::FromSketches(b, base));
    pool.Or(ha, hb);
    EXPECT_EQ(pool.ToBitSignature(ha), ref);
    pool.Free(ha);
    pool.Free(hb);
  }
}

TEST(SignaturePoolTest, BatchKernelsMatchPerSlotOps) {
  Rng rng(99);
  const int k = 64;
  const size_t n = 37;
  SignaturePool pool(k);
  std::vector<SignaturePool::Handle> dst(n), src(n);
  std::vector<BitSignature> ref(n);
  const Sketch query = RandomSketch(k, &rng);
  for (size_t i = 0; i < n; ++i) {
    const Sketch a = RandomSketch(k, &rng);
    const Sketch b = RandomSketch(k, &rng);
    dst[i] = pool.Allocate();
    src[i] = pool.Allocate();
    pool.BuildFromSketches(dst[i], a, query);
    pool.BuildFromSketches(src[i], b, query);
    ref[i] = BitSignature::FromSketches(a, query);
    ref[i].OrWith(BitSignature::FromSketches(b, query));
  }
  pool.OrRange(dst.data(), src.data(), n);
  std::vector<int> eq(n), less(n);
  pool.NumEqualBatch(dst.data(), n, eq.data(), less.data());
  const double delta = 0.6;
  std::vector<uint8_t> prune(n);
  const size_t pruned = pool.PruneScan(dst.data(), n, delta, prune.data());
  size_t expect_pruned = 0;
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(pool.ToBitSignature(dst[i]), ref[i]) << i;
    EXPECT_EQ(eq[i], ref[i].NumEqual()) << i;
    EXPECT_EQ(less[i], ref[i].NumLess()) << i;
    EXPECT_EQ(prune[i] != 0, !ref[i].SatisfiesLemma2(delta)) << i;
    expect_pruned += prune[i];
  }
  EXPECT_EQ(pruned, expect_pruned);
  EXPECT_TRUE(pool.Validate().ok());
}

TEST(SignaturePoolTest, FreeListReusesSlotsWithoutGrowth) {
  SignaturePool pool(16);
  const SignaturePool::Handle a = pool.Allocate();
  const SignaturePool::Handle b = pool.Allocate();
  EXPECT_EQ(pool.capacity(), 2u);
  EXPECT_EQ(pool.live_count(), 2u);
  pool.Free(a);
  EXPECT_FALSE(pool.IsLive(a));
  EXPECT_TRUE(pool.IsLive(b));
  const SignaturePool::Handle c = pool.Allocate();
  EXPECT_EQ(c, a) << "freed slot must be reused";
  EXPECT_EQ(pool.capacity(), 2u) << "reuse must not grow the slab";
  EXPECT_TRUE(pool.Validate().ok());
}

TEST(SignaturePoolTest, ReusedSlotIsZeroed) {
  Rng rng(5);
  const int k = 40;
  SignaturePool pool(k);
  const SignaturePool::Handle h = pool.Allocate();
  pool.BuildFromSketches(h, RandomSketch(k, &rng), RandomSketch(k, &rng));
  pool.Free(h);
  const SignaturePool::Handle h2 = pool.Allocate();
  ASSERT_EQ(h2, h);
  // A fresh slot is the all-">" signature: zero words, zero counts.
  for (size_t w = 0; w < pool.words_per_sig(); ++w) {
    EXPECT_EQ(pool.word(h2, w), 0u);
  }
  EXPECT_EQ(pool.NumEqual(h2), 0);
  EXPECT_EQ(pool.NumLess(h2), 0);
}

TEST(SignaturePoolTest, HandlesSurviveSlabGrowth) {
  Rng rng(11);
  const int k = 48;
  SignaturePool pool(k);
  const Sketch cand = RandomSketch(k, &rng);
  const Sketch query = RandomSketch(k, &rng);
  const SignaturePool::Handle first = pool.Allocate();
  pool.BuildFromSketches(first, cand, query);
  const BitSignature ref = BitSignature::FromSketches(cand, query);
  // Force many slab growths (and likely reallocations of the backing store).
  std::vector<SignaturePool::Handle> extra;
  for (int i = 0; i < 5000; ++i) extra.push_back(pool.Allocate());
  EXPECT_EQ(pool.ToBitSignature(first), ref)
      << "slot contents must survive slab reallocation";
  const SignaturePool::Handle clone = pool.Clone(first);
  EXPECT_EQ(pool.ToBitSignature(clone), ref);
  for (SignaturePool::Handle h : extra) pool.Free(h);
  EXPECT_TRUE(pool.Validate().ok());
  EXPECT_EQ(pool.live_count(), 2u);
}

TEST(SignaturePoolTest, ValidateCatchesImpossiblePair) {
  SignaturePool pool(32);
  const SignaturePool::Handle h = pool.Allocate();
  ASSERT_TRUE(pool.Validate().ok());
  // Set an odd ("<") bit without its even ("≤") partner — unreachable
  // through SetRelation/Or, so Validate must flag it.
  pool.word(h, 0) = 0x2;
  EXPECT_FALSE(pool.Validate().ok());
}

TEST(SignaturePoolTest, ValidateCatchesNonzeroTailBits) {
  SignaturePool pool(5);  // 10 bits used, 54 tail bits in the single word
  const SignaturePool::Handle h = pool.Allocate();
  ASSERT_TRUE(pool.Validate().ok());
  pool.word(h, 0) = uint64_t{0x3} << 10;  // a valid pair, but beyond 2K
  EXPECT_FALSE(pool.Validate().ok());
}

}  // namespace
}  // namespace vcd::sketch
