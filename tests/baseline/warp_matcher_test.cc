#include "baseline/warp_matcher.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace vcd::baseline {
namespace {

FeatureSeq RandomFeatures(Rng* rng, size_t n, int d = 5) {
  FeatureSeq out(n, FeatureVec(static_cast<size_t>(d)));
  for (auto& f : out) {
    for (auto& v : f) v = static_cast<float>(rng->UniformDouble());
  }
  return out;
}

void Feed(WarpMatcher* m, const FeatureSeq& seq, int64_t at_key_slot) {
  for (size_t i = 0; i < seq.size(); ++i) {
    const int64_t slot = at_key_slot + static_cast<int64_t>(i);
    m->ProcessKeyFrame(slot * 12, static_cast<double>(slot) / 2.5, seq[i]);
  }
}

TEST(WarpMatcherTest, CreateValidation) {
  WarpMatcherOptions o;
  EXPECT_TRUE(WarpMatcher::Create(o).ok());
  o.warp_width = -1;
  EXPECT_FALSE(WarpMatcher::Create(o).ok());
  o = WarpMatcherOptions();
  o.slide_gap = 0;
  EXPECT_FALSE(WarpMatcher::Create(o).ok());
}

TEST(BandedDtwTest, IdenticalSequencesZero) {
  Rng rng(1);
  auto a = RandomFeatures(&rng, 20);
  EXPECT_DOUBLE_EQ(WarpMatcher::BandedDtw(a, a, 5), 0.0);
}

TEST(BandedDtwTest, EmptySequenceInfinite) {
  Rng rng(2);
  auto a = RandomFeatures(&rng, 5);
  EXPECT_TRUE(std::isinf(WarpMatcher::BandedDtw(a, {}, 5)));
  EXPECT_TRUE(std::isinf(WarpMatcher::BandedDtw({}, a, 5)));
}

TEST(BandedDtwTest, SymmetricEnough) {
  Rng rng(3);
  auto a = RandomFeatures(&rng, 15);
  auto b = RandomFeatures(&rng, 15);
  // DTW with symmetric step pattern is symmetric.
  EXPECT_NEAR(WarpMatcher::BandedDtw(a, b, 5), WarpMatcher::BandedDtw(b, a, 5), 1e-9);
}

TEST(BandedDtwTest, ToleratesLocalTimeShift) {
  // A locally time-warped copy (frame repeated/dropped) has near-zero DTW
  // distance but a substantial rigid distance.
  Rng rng(5);
  auto a = RandomFeatures(&rng, 30);
  FeatureSeq warped;
  for (size_t i = 0; i < a.size(); ++i) {
    warped.push_back(a[i]);
    if (i % 7 == 3) warped.push_back(a[i]);  // stutter every 7th frame
  }
  warped.resize(30);
  double rigid = 0;
  for (size_t i = 0; i < 30; ++i) rigid += FrameDistance(a[i], warped[i]);
  rigid /= 30;
  const double dtw = WarpMatcher::BandedDtw(a, warped, 8);
  EXPECT_LT(dtw, rigid * 0.3);
}

TEST(BandedDtwTest, WiderBandNeverIncreasesDistance) {
  Rng rng(7);
  auto a = RandomFeatures(&rng, 25);
  auto b = RandomFeatures(&rng, 25);
  // r = 0 is the rigid diagonal. Any band admits the diagonal path, the DP
  // minimizes total cost, and path length only grows, so every normalized
  // banded distance is bounded by the rigid one.
  const double rigid = WarpMatcher::BandedDtw(a, b, 0);
  for (int r : {1, 2, 4, 8, 16}) {
    EXPECT_LE(WarpMatcher::BandedDtw(a, b, r), rigid + 1e-9) << "r=" << r;
  }
}

TEST(BandedDtwTest, CellEvaluationsGrowWithBand) {
  Rng rng(9);
  auto a = RandomFeatures(&rng, 40);
  auto b = RandomFeatures(&rng, 40);
  int64_t narrow = 0, wide = 0;
  WarpMatcher::BandedDtw(a, b, 2, &narrow);
  WarpMatcher::BandedDtw(a, b, 12, &wide);
  EXPECT_GT(wide, narrow);
}

TEST(BandedDtwTest, LengthMismatchHandled) {
  Rng rng(11);
  auto a = RandomFeatures(&rng, 20);
  auto b = RandomFeatures(&rng, 12);
  // Band is widened to cover the length difference; a finite distance must
  // come back.
  EXPECT_TRUE(std::isfinite(WarpMatcher::BandedDtw(a, b, 2)));
}

TEST(WarpMatcherTest, DetectsExactCopy) {
  Rng rng(13);
  auto m = WarpMatcher::Create(WarpMatcherOptions()).value();
  auto query = RandomFeatures(&rng, 20);
  ASSERT_TRUE(m.AddQuery(1, query, 8.0).ok());
  Feed(&m, RandomFeatures(&rng, 40), 0);
  Feed(&m, query, 40);
  Feed(&m, RandomFeatures(&rng, 20), 60);
  ASSERT_FALSE(m.matches().empty());
  EXPECT_EQ(m.matches()[0].query_id, 1);
  // The band tolerates a few frames of misalignment, so the first report
  // may fire slightly before perfect alignment; it must still be close in
  // both position and similarity. The copy occupies slots [40, 60).
  EXPECT_GE(m.matches()[0].similarity, 0.9);
  EXPECT_NEAR(static_cast<double>(m.matches()[0].end_frame), 59 * 12, 6 * 12);
}

TEST(WarpMatcherTest, DetectsLocallyWarpedCopy) {
  Rng rng(15);
  WarpMatcherOptions o;
  o.warp_width = 8;
  o.distance_threshold = 0.06;
  auto m = WarpMatcher::Create(o).value();
  auto query = RandomFeatures(&rng, 30);
  ASSERT_TRUE(m.AddQuery(1, query, 12.0).ok());
  FeatureSeq warped;
  for (size_t i = 0; i < query.size(); ++i) {
    warped.push_back(query[i]);
    if (i % 6 == 2) warped.push_back(query[i]);
  }
  warped.resize(30);
  Feed(&m, RandomFeatures(&rng, 40), 0);
  Feed(&m, warped, 40);
  Feed(&m, RandomFeatures(&rng, 20), 70);
  EXPECT_FALSE(m.matches().empty());
}

TEST(WarpMatcherTest, WholesaleReorderStillMissed) {
  // Warping tolerates local drift, not segment permutation (§VI-E).
  Rng rng(17);
  WarpMatcherOptions o;
  o.warp_width = 5;
  o.distance_threshold = 0.08;
  auto m = WarpMatcher::Create(o).value();
  auto query = RandomFeatures(&rng, 40);
  ASSERT_TRUE(m.AddQuery(1, query, 16.0).ok());
  FeatureSeq reordered;
  for (int chunk : {3, 1, 0, 2}) {
    for (int i = 0; i < 10; ++i) {
      reordered.push_back(query[static_cast<size_t>(chunk * 10 + i)]);
    }
  }
  Feed(&m, RandomFeatures(&rng, 50), 0);
  Feed(&m, reordered, 50);
  Feed(&m, RandomFeatures(&rng, 30), 90);
  EXPECT_TRUE(m.matches().empty());
}

TEST(WarpMatcherTest, ResetStreamClearsState) {
  Rng rng(19);
  auto m = WarpMatcher::Create(WarpMatcherOptions()).value();
  auto query = RandomFeatures(&rng, 10);
  ASSERT_TRUE(m.AddQuery(1, query, 4.0).ok());
  Feed(&m, query, 0);
  EXPECT_FALSE(m.matches().empty());
  m.ResetStream();
  EXPECT_TRUE(m.matches().empty());
  EXPECT_EQ(m.cell_evaluations(), 0);
}

}  // namespace
}  // namespace vcd::baseline
