#include "baseline/seq_matcher.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace vcd::baseline {
namespace {

FeatureSeq RandomFeatures(Rng* rng, size_t n, int d = 5) {
  FeatureSeq out(n, FeatureVec(static_cast<size_t>(d)));
  for (auto& f : out) {
    for (auto& v : f) v = static_cast<float>(rng->UniformDouble());
  }
  return out;
}

void Feed(SeqMatcher* m, const FeatureSeq& seq, int64_t at_key_slot) {
  for (size_t i = 0; i < seq.size(); ++i) {
    const int64_t slot = at_key_slot + static_cast<int64_t>(i);
    m->ProcessKeyFrame(slot * 12, static_cast<double>(slot) / 2.5, seq[i]);
  }
}

TEST(FrameDistanceTest, Basics) {
  EXPECT_DOUBLE_EQ(FrameDistance({0, 0}, {0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(FrameDistance({1, 0}, {0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(FrameDistance({0.5f, 0.5f}, {0.0f, 1.0f}), 0.5);
  EXPECT_DOUBLE_EQ(FrameDistance({}, {}), 0.0);
}

TEST(SeqMatcherTest, CreateValidation) {
  SeqMatcherOptions o;
  EXPECT_TRUE(SeqMatcher::Create(o).ok());
  o.slide_gap = 0;
  EXPECT_FALSE(SeqMatcher::Create(o).ok());
  o = SeqMatcherOptions();
  o.distance_threshold = -0.1;
  EXPECT_FALSE(SeqMatcher::Create(o).ok());
}

TEST(SeqMatcherTest, AddQueryValidation) {
  auto m = SeqMatcher::Create(SeqMatcherOptions()).value();
  EXPECT_FALSE(m.AddQuery(1, {}, 10.0).ok());
  Rng rng(1);
  auto q = RandomFeatures(&rng, 10);
  EXPECT_FALSE(m.AddQuery(1, q, 0.0).ok());
  EXPECT_TRUE(m.AddQuery(1, q, 10.0).ok());
  EXPECT_EQ(m.AddQuery(1, q, 10.0).code(), StatusCode::kAlreadyExists);
}

TEST(SeqMatcherTest, DetectsExactCopy) {
  Rng rng(3);
  auto m = SeqMatcher::Create(SeqMatcherOptions()).value();
  auto query = RandomFeatures(&rng, 20);
  ASSERT_TRUE(m.AddQuery(1, query, 8.0).ok());
  Feed(&m, RandomFeatures(&rng, 50), 0);
  Feed(&m, query, 50);
  Feed(&m, RandomFeatures(&rng, 30), 70);
  ASSERT_FALSE(m.matches().empty());
  const auto& match = m.matches()[0];
  EXPECT_EQ(match.query_id, 1);
  // The aligned position: copy at slots [50, 70).
  EXPECT_EQ(match.end_frame, 69 * 12);
  EXPECT_GE(match.similarity, 0.99);
}

TEST(SeqMatcherTest, RandomBackgroundNotDetected) {
  Rng rng(5);
  SeqMatcherOptions o;
  o.distance_threshold = 0.05;
  auto m = SeqMatcher::Create(o).value();
  ASSERT_TRUE(m.AddQuery(1, RandomFeatures(&rng, 20), 8.0).ok());
  Feed(&m, RandomFeatures(&rng, 200), 0);
  EXPECT_TRUE(m.matches().empty());
}

TEST(SeqMatcherTest, TemporalReorderBreaksRigidAlignment) {
  // The paper's point (§VI-E): Seq relies on temporal order, so a
  // chunk-reordered copy is missed at thresholds that catch the original.
  Rng rng(7);
  SeqMatcherOptions o;
  o.distance_threshold = 0.1;
  auto m = SeqMatcher::Create(o).value();
  auto query = RandomFeatures(&rng, 40);
  ASSERT_TRUE(m.AddQuery(1, query, 16.0).ok());
  FeatureSeq reordered;
  for (int chunk : {3, 1, 0, 2}) {
    for (int i = 0; i < 10; ++i) {
      reordered.push_back(query[static_cast<size_t>(chunk * 10 + i)]);
    }
  }
  Feed(&m, RandomFeatures(&rng, 50), 0);
  Feed(&m, reordered, 50);
  Feed(&m, RandomFeatures(&rng, 30), 90);
  EXPECT_TRUE(m.matches().empty());
}

TEST(SeqMatcherTest, SlideGapSkipsPositions) {
  Rng rng(9);
  SeqMatcherOptions o;
  o.slide_gap = 5;
  auto m = SeqMatcher::Create(o).value();
  auto query = RandomFeatures(&rng, 20);
  ASSERT_TRUE(m.AddQuery(1, query, 8.0).ok());
  Feed(&m, query, 0);
  Feed(&m, RandomFeatures(&rng, 20), 20);
  // With gap 5, comparisons happen every 5 frames; comparisons total
  // should be far fewer than frame count * query length.
  EXPECT_LE(m.frame_comparisons(), 8 * 20);
}

TEST(SeqMatcherTest, CooldownSuppressesRepeats) {
  Rng rng(11);
  SeqMatcherOptions o;
  o.report_cooldown_seconds = -1.0;  // query duration
  auto m = SeqMatcher::Create(o).value();
  // A constant query matches a constant stream at every position; cooldown
  // keeps the report count bounded.
  FeatureSeq flat(20, FeatureVec(5, 0.5f));
  ASSERT_TRUE(m.AddQuery(1, flat, 8.0).ok());
  Feed(&m, FeatureSeq(100, FeatureVec(5, 0.5f)), 0);
  // 100 slots at 2.5/s = 40 s; cooldown 8 s → about 5 reports, not ~80.
  EXPECT_LE(m.matches().size(), 7u);
  EXPECT_GE(m.matches().size(), 3u);
}

TEST(SeqMatcherTest, ResetStreamClearsState) {
  Rng rng(13);
  auto m = SeqMatcher::Create(SeqMatcherOptions()).value();
  auto query = RandomFeatures(&rng, 10);
  ASSERT_TRUE(m.AddQuery(1, query, 4.0).ok());
  Feed(&m, query, 0);
  EXPECT_FALSE(m.matches().empty());
  m.ResetStream();
  EXPECT_TRUE(m.matches().empty());
  EXPECT_EQ(m.frame_comparisons(), 0);
  Feed(&m, query, 0);
  EXPECT_FALSE(m.matches().empty());
}

TEST(SeqMatcherTest, NoMatchBeforeBufferFills) {
  Rng rng(15);
  auto m = SeqMatcher::Create(SeqMatcherOptions()).value();
  auto query = RandomFeatures(&rng, 20);
  ASSERT_TRUE(m.AddQuery(1, query, 8.0).ok());
  // Feed only half the query: buffer shorter than L, no comparison fires.
  Feed(&m, FeatureSeq(query.begin(), query.begin() + 10), 0);
  EXPECT_TRUE(m.matches().empty());
  EXPECT_EQ(m.frame_comparisons(), 0);
}

}  // namespace
}  // namespace vcd::baseline
