/// \file fault_matrix_test.cc
/// The fault matrix: every faultfx injection site crossed with every
/// corruption policy, asserting the resilience contract of DESIGN.md §12 —
/// the process never crashes, quarantined streams are readmitted after
/// backoff, failed-over shards recover, and streams the fault does not
/// target produce byte-identical match sequences to a no-fault run.
///
/// These tests only run in a `-DVCD_FAULTFX=ON` build (tools/check.sh
/// faultfx / faultfx-tsan / faultfx-asan); elsewhere they GTEST_SKIP.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/monitor.h"
#include "parallel/executor.h"
#include "util/faultfx.h"
#include "video/codec.h"
#include "video/partial_decoder.h"
#include "video/scene_model.h"
#include "video/synthetic.h"

namespace vcd {
namespace {

using core::CorruptionPolicy;
using core::DetectorConfig;
using core::ParallelConfig;
using parallel::ExecutorStats;
using parallel::StreamExecutor;
using parallel::StreamHealth;

DetectorConfig SmallConfig() {
  DetectorConfig c;
  c.K = 64;
  c.window_seconds = 4.0;
  c.delta = 0.6;
  return c;
}

video::DcFrame TinyFrame(int64_t slot, float fill) {
  video::DcFrame f;
  f.blocks_x = 6;
  f.blocks_y = 6;
  f.frame_index = slot * 12;
  f.timestamp = static_cast<double>(slot) / 2.5;
  f.dc.resize(36);
  for (size_t i = 0; i < 36; ++i) {
    f.dc[i] = 8.0f * 60.0f * std::sin(0.7f * fill + 0.9f * static_cast<float>(i));
  }
  return f;
}

std::vector<video::DcFrame> QueryFrames() {
  std::vector<video::DcFrame> frames;
  for (int i = 0; i < 40; ++i) frames.push_back(TinyFrame(i, 100.0f + i));
  return frames;
}

/// One stream's matches in arrival order, every field significant.
struct MatchKey {
  int query_id;
  double start_time;
  double end_time;
  double similarity;
  bool operator==(const MatchKey& o) const {
    return query_id == o.query_id && start_time == o.start_time &&
           end_time == o.end_time && similarity == o.similarity;
  }
};

using MatchLog = std::map<std::string, std::vector<MatchKey>>;

struct ScenarioResult {
  MatchLog matches;
  ExecutorStats stats;
  Status drain_status;
  std::map<int, StreamHealth> final_health;  // stream id → health pre-close
};

constexpr int kStreams = 4;
constexpr int kNoiseFrames = 25;
constexpr int kCopyFrames = 40;

ParallelConfig TestParallelConfig(CorruptionPolicy policy, int watchdog_ms) {
  ParallelConfig pc;
  pc.num_threads = 2;
  pc.queue_capacity = 64;
  pc.backpressure = core::BackpressurePolicy::kBlock;
  pc.on_corruption = policy;
  pc.degraded_after_faults = 2;
  pc.quarantine_after_faults = 4;
  pc.recover_after_frames = 4;
  pc.quarantine_backoff_frames = 8;
  pc.quarantine_backoff_max_frames = 16;
  pc.watchdog_ms = watchdog_ms;
  return pc;
}

/// The per-round frame fill of stream index \p s: 25 rounds of noise, then
/// one embedded copy of query 1.
float ScenarioFill(int round, int s) {
  return round < kNoiseFrames
             ? -80.0f + static_cast<float>((round + s) % 5)
             : 100.0f + static_cast<float>(round - kNoiseFrames);
}

/// Runs the canonical 4-stream scenario (each stream carries one embedded
/// copy of query 1) under whatever faults are currently armed. Frames are
/// fed round-robin from this thread, so the submission schedule — and with
/// it every uninjected stream's match sequence — is deterministic.
ScenarioResult RunScenario(CorruptionPolicy policy) {
  ScenarioResult r;
  auto exec =
      StreamExecutor::Create(SmallConfig(), TestParallelConfig(policy, 0))
          .value();
  EXPECT_TRUE(exec->AddQuery(1, QueryFrames(), 16.0).ok());
  std::vector<int> sids;
  for (int s = 0; s < kStreams; ++s) {
    sids.push_back(exec->OpenStream("stream-" + std::to_string(s)).value());
  }
  for (int i = 0; i < kNoiseFrames + kCopyFrames; ++i) {
    for (int s = 0; s < kStreams; ++s) {
      EXPECT_TRUE(
          exec->ProcessKeyFrame(sids[static_cast<size_t>(s)],
                                TinyFrame(i, ScenarioFill(i, s)))
              .ok());
    }
  }
  // Health and stats are snapshotted before the closes tear the per-stream
  // detectors down (AggregateDetectorStats covers installed streams only).
  for (int sid : sids) {
    auto h = exec->HealthOf(sid);
    if (h.ok()) r.final_health[sid] = *h;
  }
  r.stats = exec->Stats();
  for (int sid : sids) {
    const Status st = exec->CloseStream(sid);
    EXPECT_TRUE(st.ok()) << "close " << sid << ": " << st.ToString();
  }
  r.drain_status = exec->Drain();
  for (const core::StreamMatch& m : exec->matches()) {
    r.matches[m.stream_name].push_back(MatchKey{m.match.query_id,
                                                m.match.start_time,
                                                m.match.end_time,
                                                m.match.similarity});
  }
  return r;
}

int64_t SumField(const ExecutorStats& s, int64_t parallel::ShardStats::*f) {
  int64_t n = 0;
  for (const auto& sh : s.shards) n += sh.*f;
  return n;
}

/// Submitted frames must land in exactly one accounting bucket.
void ExpectFramePartition(const ExecutorStats& s) {
  EXPECT_EQ(SumField(s, &parallel::ShardStats::frames_processed) +
                SumField(s, &parallel::ShardStats::frames_rejected) +
                SumField(s, &parallel::ShardStats::frames_quarantined) +
                SumField(s, &parallel::ShardStats::frames_failed) +
                s.frames_dropped_backpressure + s.frames_dropped_failover,
            s.frames_submitted);
}

/// Streams other than `stream-<injected>` must match the baseline exactly.
void ExpectOthersIdentical(const MatchLog& baseline, const MatchLog& got,
                           int injected) {
  for (int s = 0; s < kStreams; ++s) {
    if (s == injected) continue;
    const std::string name = "stream-" + std::to_string(s);
    const auto bit = baseline.find(name);
    const auto git = got.find(name);
    ASSERT_NE(bit, baseline.end()) << name << " matched nothing in baseline";
    ASSERT_NE(git, got.end()) << name << " lost its matches under fault";
    EXPECT_EQ(bit->second.size(), git->second.size()) << name;
    for (size_t i = 0; i < bit->second.size() && i < git->second.size(); ++i) {
      EXPECT_TRUE(bit->second[i] == git->second[i])
          << name << " match " << i << " diverged";
    }
  }
}

class FaultMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!faultfx::kEnabled) {
      GTEST_SKIP() << "faultfx sites compiled out (build with -DVCD_FAULTFX=ON)";
    }
    faultfx::Injector::Instance().Reset();
  }
  void TearDown() override {
    if (faultfx::kEnabled) faultfx::Injector::Instance().Reset();
  }
};

// The stream the executor-level fault plans target (stream-1; shard 0 holds
// sids 1 and 3, shard 1 holds sids 2 and 4 under 2 threads).
constexpr uint64_t kTargetSid = 2;
constexpr int kTargetIndex = 1;  // its "stream-<i>" index

TEST_F(FaultMatrixTest, InjectorIsDeterministicAndKeyed) {
  faultfx::Plan plan;
  plan.seed = 7;
  plan.probability = 0.5;
  plan.key_filter = 3;
  std::vector<bool> first;
  {
    faultfx::ScopedFault fault(faultfx::Site::kDecodeError, plan);
    for (int i = 0; i < 64; ++i) {
      first.push_back(faultfx::ShouldFire(faultfx::Site::kDecodeError, 3));
      // A different key never fires through a key-filtered plan...
      EXPECT_FALSE(faultfx::ShouldFire(faultfx::Site::kDecodeError, 4));
      // ...and other sites are untouched.
      EXPECT_FALSE(faultfx::ShouldFire(faultfx::Site::kClockSkew, 3));
    }
  }
  EXPECT_FALSE(faultfx::ShouldFire(faultfx::Site::kDecodeError, 3));  // disarmed
  faultfx::Injector::Instance().Reset();
  {
    faultfx::ScopedFault fault(faultfx::Site::kDecodeError, plan);
    for (int i = 0; i < 64; ++i) {
      EXPECT_EQ(faultfx::ShouldFire(faultfx::Site::kDecodeError, 3),
                static_cast<bool>(first[static_cast<size_t>(i)]))
          << "fire decision " << i << " not reproducible";
      (void)faultfx::ShouldFire(faultfx::Site::kDecodeError, 4);
      (void)faultfx::ShouldFire(faultfx::Site::kClockSkew, 3);
    }
  }
  int fired = 0;
  for (const bool b : first) fired += b ? 1 : 0;
  EXPECT_GT(fired, 0);
  EXPECT_LT(fired, 64);
}

TEST_F(FaultMatrixTest, SkipFirstAndMaxFiresBoundTheWindow) {
  faultfx::Plan plan;
  plan.seed = 11;
  plan.skip_first = 10;
  plan.max_fires = 3;
  faultfx::ScopedFault fault(faultfx::Site::kQueueOverflow, plan);
  int fires = 0;
  for (int i = 0; i < 50; ++i) {
    if (faultfx::ShouldFire(faultfx::Site::kQueueOverflow, 1)) {
      EXPECT_GE(i, 10);
      ++fires;
    }
  }
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(faultfx::Injector::Instance().fires(faultfx::Site::kQueueOverflow), 3);
  EXPECT_EQ(faultfx::Injector::Instance().hits(faultfx::Site::kQueueOverflow), 50);
}

/// Decoder site: injected bitstream corruption is kCorruption in strict
/// mode and a resync (not an error) in resync mode.
TEST_F(FaultMatrixTest, BitstreamCorruptionSite) {
  video::SceneModel model = video::SceneModel::Generate(21, 6.0);
  video::RenderOptions ro;
  ro.width = 64;
  ro.height = 48;
  ro.fps = 10.0;
  auto clip = video::RenderVideo(model, 0.0, 1.2, ro);
  ASSERT_TRUE(clip.ok());
  video::CodecParams p;
  p.width = 64;
  p.height = 48;
  p.fps = 10.0;
  p.gop_size = 4;
  p.quantizer = 3;
  auto bytes = video::Encoder::EncodeVideo(*clip, p);
  ASSERT_TRUE(bytes.ok());

  faultfx::Plan plan;
  plan.seed = 5;
  plan.skip_first = 1;  // let the first frame header through
  plan.max_fires = 1;
  {
    faultfx::ScopedFault fault(faultfx::Site::kBitstreamCorruption, plan);
    video::PartialDecoder pd;
    ASSERT_TRUE(pd.Open(bytes->data(), bytes->size()).ok());
    video::DcFrame f;
    ASSERT_TRUE(pd.NextKeyFrame(&f).ok());
    Status st;
    while ((st = pd.NextKeyFrame(&f)).ok()) {
    }
    EXPECT_EQ(st.code(), StatusCode::kCorruption);
    EXPECT_TRUE(st.ToString().find("injected") != std::string::npos)
        << st.ToString();
  }
  faultfx::Injector::Instance().Reset();
  {
    faultfx::ScopedFault fault(faultfx::Site::kBitstreamCorruption, plan);
    video::PartialDecoder pd;
    pd.set_resync_on_corruption(true);
    ASSERT_TRUE(pd.Open(bytes->data(), bytes->size()).ok());
    video::DcFrame f;
    int emitted = 0;
    while (pd.NextKeyFrame(&f).ok()) ++emitted;
    EXPECT_GE(emitted, 2);  // the stream survives the injected tear
    EXPECT_GE(pd.stats().resync_scans, 1);
  }
}

/// Site × policy cells for the executor-level sites. Each cell arms one
/// fault against one stream (or one shard) and checks the blast radius.
TEST_F(FaultMatrixTest, DecodeErrorMatrix) {
  const ScenarioResult baseline = RunScenario(CorruptionPolicy::kSkip);
  ASSERT_TRUE(baseline.drain_status.ok());
  for (const auto& [sid, h] : baseline.final_health) {
    EXPECT_EQ(h, StreamHealth::kHealthy);
  }
  ASSERT_EQ(baseline.matches.size(), static_cast<size_t>(kStreams));

  for (const CorruptionPolicy policy :
       {CorruptionPolicy::kSkip, CorruptionPolicy::kQuarantine,
        CorruptionPolicy::kFail}) {
    faultfx::Injector::Instance().Reset();
    faultfx::Plan plan;
    plan.seed = 42;
    plan.key_filter = kTargetSid;
    plan.skip_first = 10;
    plan.max_fires = 8;
    faultfx::ScopedFault fault(faultfx::Site::kDecodeError, plan);
    const ScenarioResult r = RunScenario(policy);
    ExpectOthersIdentical(baseline.matches, r.matches, kTargetIndex);
    ExpectFramePartition(r.stats);
    switch (policy) {
      case CorruptionPolicy::kSkip:
        EXPECT_TRUE(r.drain_status.ok()) << r.drain_status.ToString();
        EXPECT_EQ(SumField(r.stats, &parallel::ShardStats::frames_degraded), 8);
        EXPECT_EQ(SumField(r.stats, &parallel::ShardStats::frames_quarantined), 0);
        break;
      case CorruptionPolicy::kQuarantine: {
        EXPECT_TRUE(r.drain_status.ok()) << r.drain_status.ToString();
        // 4 faults → quarantine (8 discards), readmit, 4 more faults →
        // re-quarantine with doubled backoff (16 discards), then recover.
        int64_t events = 0;
        for (const auto& sh : r.stats.shards) events += sh.quarantine_events;
        EXPECT_EQ(events, 2);
        EXPECT_EQ(SumField(r.stats, &parallel::ShardStats::frames_quarantined),
                  24);
        const auto h = r.final_health.find(static_cast<int>(kTargetSid));
        ASSERT_NE(h, r.final_health.end());
        EXPECT_EQ(h->second, StreamHealth::kHealthy)
            << "quarantined stream was not readmitted and recovered";
        break;
      }
      case CorruptionPolicy::kFail: {
        EXPECT_EQ(r.drain_status.code(), StatusCode::kCorruption);
        const auto h = r.final_health.find(static_cast<int>(kTargetSid));
        ASSERT_NE(h, r.final_health.end());
        EXPECT_EQ(h->second, StreamHealth::kFailed);
        EXPECT_GT(SumField(r.stats, &parallel::ShardStats::frames_failed), 0);
        break;
      }
    }
  }
}

TEST_F(FaultMatrixTest, QueueOverflowMatrix) {
  const ScenarioResult baseline = RunScenario(CorruptionPolicy::kSkip);
  ASSERT_TRUE(baseline.drain_status.ok());
  for (const CorruptionPolicy policy :
       {CorruptionPolicy::kSkip, CorruptionPolicy::kQuarantine,
        CorruptionPolicy::kFail}) {
    faultfx::Injector::Instance().Reset();
    faultfx::Plan plan;
    plan.seed = 43;
    plan.key_filter = kTargetSid;
    plan.skip_first = 5;
    plan.max_fires = 6;
    faultfx::ScopedFault fault(faultfx::Site::kQueueOverflow, plan);
    const ScenarioResult r = RunScenario(policy);
    // An overflow drop happens before the frame reaches the stream's
    // detector, so no policy can fail or quarantine the stream for it.
    EXPECT_TRUE(r.drain_status.ok()) << r.drain_status.ToString();
    EXPECT_EQ(r.stats.frames_dropped_backpressure, 6);
    ExpectOthersIdentical(baseline.matches, r.matches, kTargetIndex);
    ExpectFramePartition(r.stats);
  }
}

TEST_F(FaultMatrixTest, ClockSkewMatrix) {
  const ScenarioResult baseline = RunScenario(CorruptionPolicy::kSkip);
  ASSERT_TRUE(baseline.drain_status.ok());
  for (const CorruptionPolicy policy :
       {CorruptionPolicy::kSkip, CorruptionPolicy::kFail}) {
    faultfx::Injector::Instance().Reset();
    faultfx::Plan plan;
    plan.seed = 44;
    plan.key_filter = kTargetSid;
    plan.skip_first = 20;
    plan.max_fires = 2;
    plan.magnitude = -5.0;  // five seconds backwards
    faultfx::ScopedFault fault(faultfx::Site::kClockSkew, plan);
    const ScenarioResult r = RunScenario(policy);
    ExpectOthersIdentical(baseline.matches, r.matches, kTargetIndex);
    ExpectFramePartition(r.stats);
    // The detector demotes out-of-order frames instead of corrupting its
    // window clock; the shard books them as faults.
    int64_t out_of_order = 0;
    for (const auto& ds : r.stats.shard_detector_stats) {
      out_of_order += ds.out_of_order_frames;
    }
    if (policy == CorruptionPolicy::kSkip) {
      EXPECT_TRUE(r.drain_status.ok()) << r.drain_status.ToString();
      EXPECT_EQ(out_of_order, 2);
      EXPECT_EQ(SumField(r.stats, &parallel::ShardStats::frames_degraded), 2);
    } else {
      EXPECT_EQ(r.drain_status.code(), StatusCode::kCorruption);
    }
  }
}

/// The stall cell drives the full watchdog arc by hand: a 400 ms injected
/// stall on shard 1 → watchdog failover → deterministic failover drop and
/// an orphaned CloseStream → drain-and-readmit → recovery. Streams on the
/// healthy shard and the untouched stream on the stalled shard must stay
/// byte-identical to the no-fault run.
TEST_F(FaultMatrixTest, ShardStallTriggersWatchdogFailoverAndRecovery) {
  const ScenarioResult baseline = RunScenario(CorruptionPolicy::kSkip);
  ASSERT_TRUE(baseline.drain_status.ok());

  faultfx::Injector::Instance().Reset();
  faultfx::Plan plan;
  plan.seed = 45;
  plan.key_filter = 2;  // shard id 1 (stall keys are shard_id + 1)
  plan.skip_first = 4;
  plan.max_fires = 1;
  plan.magnitude = 400.0;  // one 400 ms stall, bounded so teardown can't hang
  faultfx::ScopedFault fault(faultfx::Site::kShardStall, plan);

  auto exec = StreamExecutor::Create(
                  SmallConfig(),
                  TestParallelConfig(CorruptionPolicy::kSkip, /*watchdog_ms=*/20))
                  .value();
  ASSERT_TRUE(exec->AddQuery(1, QueryFrames(), 16.0).ok());
  std::vector<int> sids;
  for (int s = 0; s < kStreams; ++s) {
    sids.push_back(exec->OpenStream("stream-" + std::to_string(s)).value());
  }
  // Ten rounds are enough to trip the stall (shard 1's fifth task) while
  // staying far below queue capacity, so this thread never blocks.
  for (int i = 0; i < 10; ++i) {
    for (int s = 0; s < kStreams; ++s) {
      ASSERT_TRUE(exec->ProcessKeyFrame(sids[static_cast<size_t>(s)],
                                        TinyFrame(i, ScenarioFill(i, s)))
                      .ok());
    }
  }
  const auto wait_shard1 = [&](bool want_failed) {
    for (int i = 0; i < 1000; ++i) {
      const ExecutorStats st = exec->Stats();
      if (st.shards.size() > 1 && st.shards[1].failed_over == want_failed) {
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return false;
  };
  ASSERT_TRUE(wait_shard1(true)) << "watchdog never failed the stalled shard";

  // While failed over: a submission is dropped (counted, not blocked) and a
  // close is abandoned as an orphan instead of wedging the control plane.
  ASSERT_TRUE(exec->ProcessKeyFrame(sids[1], TinyFrame(10, 0.0f)).ok());
  EXPECT_EQ(exec->CloseStream(sids[1]).code(), StatusCode::kUnavailable);
  EXPECT_EQ(exec->num_open_streams(), 4);  // the orphan is not reaped yet

  ASSERT_TRUE(wait_shard1(false)) << "drained shard was never readmitted";

  // Recovery: the remaining streams finish their full schedule untouched.
  for (int i = 10; i < kNoiseFrames + kCopyFrames; ++i) {
    for (const int s : {0, 2, 3}) {
      ASSERT_TRUE(exec->ProcessKeyFrame(sids[static_cast<size_t>(s)],
                                        TinyFrame(i, ScenarioFill(i, s)))
                      .ok());
    }
  }
  ASSERT_TRUE(exec->Drain().ok());
  // A control-plane call after the shard drained reaps the orphaned close:
  // the stream is gone now and its matches were folded in, not lost.
  EXPECT_EQ(exec->num_open_streams(), 3);
  for (const int s : {0, 2, 3}) {
    EXPECT_TRUE(exec->CloseStream(sids[static_cast<size_t>(s)]).ok());
  }
  ASSERT_TRUE(exec->Drain().ok());

  const ExecutorStats stats = exec->Stats();
  EXPECT_EQ(stats.frames_dropped_failover, 1);  // exactly the probe frame
  ExpectFramePartition(stats);

  MatchLog got;
  for (const core::StreamMatch& m : exec->matches()) {
    got[m.stream_name].push_back(MatchKey{m.match.query_id, m.match.start_time,
                                          m.match.end_time,
                                          m.match.similarity});
  }
  ExpectOthersIdentical(baseline.matches, got, /*injected=*/1);
}

}  // namespace
}  // namespace vcd
