/// \file stress_test.cc
/// Concurrency stress for the parallel executor: interleaved
/// OpenStream/CloseStream/AddQuery/RemoveQuery from multiple threads while
/// frames flow. Run under ThreadSanitizer (tools/check.sh tsan) this is the
/// race/use-after-close proof; in plain builds it checks that no matches
/// are lost and that the frame accounting reconciles exactly.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/monitor.h"
#include "parallel/executor.h"
#include "parallel/mpsc_queue.h"
#include "util/rng.h"

namespace vcd {
namespace {

using core::BackpressurePolicy;
using core::CorruptionPolicy;
using core::DetectorConfig;
using core::ParallelConfig;
using parallel::BoundedMpscQueue;
using parallel::ExecutorStats;
using parallel::StreamExecutor;
using parallel::StreamHealth;

DetectorConfig SmallConfig() {
  DetectorConfig c;
  c.K = 64;
  c.window_seconds = 4.0;
  c.delta = 0.6;
  return c;
}

video::DcFrame TinyFrame(int64_t slot, float fill) {
  video::DcFrame f;
  f.blocks_x = 6;
  f.blocks_y = 6;
  f.frame_index = slot * 12;
  f.timestamp = static_cast<double>(slot) / 2.5;
  f.dc.resize(36);
  for (size_t i = 0; i < 36; ++i) {
    f.dc[i] = 8.0f * 60.0f * std::sin(0.7f * fill + 0.9f * static_cast<float>(i));
  }
  return f;
}

/// A frame the decoder would have emitted after a corruption resync.
video::DcFrame DegradedFrame(int64_t slot) {
  video::DcFrame f = TinyFrame(slot, 0.0f);
  f.degraded = true;
  return f;
}

std::vector<video::DcFrame> QueryFrames() {
  std::vector<video::DcFrame> frames;
  for (int i = 0; i < 40; ++i) frames.push_back(TinyFrame(i, 100.0f + i));
  return frames;
}

sketch::Sketch RandomSketch(const DetectorConfig& c, uint64_t seed) {
  Rng rng(seed);
  std::vector<features::CellId> ids;
  for (int i = 0; i < 25; ++i) {
    ids.push_back(static_cast<features::CellId>(rng.Uniform(3000)));
  }
  auto fam = sketch::MinHashFamily::Create(c.K, c.hash_seed).value();
  sketch::Sketcher sk(&fam);
  return sk.FromSequence(ids);
}

/// Sum of a counter over all shards.
int64_t SumProcessed(const ExecutorStats& s) {
  int64_t n = 0;
  for (const auto& sh : s.shards) n += sh.frames_processed;
  return n;
}
int64_t SumRejected(const ExecutorStats& s) {
  int64_t n = 0;
  for (const auto& sh : s.shards) n += sh.frames_rejected;
  return n;
}
int64_t SumDegraded(const ExecutorStats& s) {
  int64_t n = 0;
  for (const auto& sh : s.shards) n += sh.frames_degraded;
  return n;
}
int64_t SumQuarantined(const ExecutorStats& s) {
  int64_t n = 0;
  for (const auto& sh : s.shards) n += sh.frames_quarantined;
  return n;
}
int64_t SumFailed(const ExecutorStats& s) {
  int64_t n = 0;
  for (const auto& sh : s.shards) n += sh.frames_failed;
  return n;
}

/// Every submitted frame lands in exactly one bucket (executor.h,
/// ProcessKeyFrame doc): processed, rejected, quarantined, failed, or one
/// of the two drop counters.
void ExpectFramePartition(const ExecutorStats& s) {
  EXPECT_EQ(SumProcessed(s) + SumRejected(s) + SumQuarantined(s) + SumFailed(s) +
                s.frames_dropped_backpressure + s.frames_dropped_failover,
            s.frames_submitted);
}

TEST(BoundedMpscQueueTest, CapacityCloseAndGauges) {
  BoundedMpscQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));  // full
  EXPECT_EQ(q.depth(), 2u);
  EXPECT_EQ(q.high_water(), 2u);
  int v = 0;
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 1);
  q.Close();
  EXPECT_FALSE(q.TryPush(4));  // closed
  EXPECT_TRUE(q.Pop(&v));      // pending item still poppable
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(q.Pop(&v));  // closed + drained
  EXPECT_EQ(q.high_water(), 2u);
}

/// Feeders own disjoint stream sets and churn open/feed/close while the
/// main thread churns the query portfolio and polls stats. No match may be
/// lost, and the frame accounting must reconcile exactly.
TEST(StressTest, NoLostMatchesUnderConcurrentChurn) {
  const DetectorConfig config = SmallConfig();
  ParallelConfig pc;
  pc.num_threads = 4;
  pc.queue_capacity = 32;
  pc.backpressure = BackpressurePolicy::kBlock;
  auto exec = StreamExecutor::Create(config, pc).value();
  ASSERT_TRUE(exec->AddQuery(1, QueryFrames(), 16.0).ok());

  const int kFeeders = 4;
  const int kStreamsPerFeeder = 3;
  std::atomic<int> streams_fed{0};
  std::atomic<bool> feeders_done{false};
  std::vector<std::thread> feeders;
  for (int f = 0; f < kFeeders; ++f) {
    feeders.emplace_back([&, f] {
      for (int k = 0; k < kStreamsPerFeeder; ++k) {
        auto id = exec->OpenStream("feeder-" + std::to_string(f) + "-" +
                                   std::to_string(k));
        ASSERT_TRUE(id.ok());
        int64_t slot = 0;
        for (int i = 0; i < 25; ++i, ++slot) {
          ASSERT_TRUE(
              exec->ProcessKeyFrame(*id, TinyFrame(slot, -80.0f + (i % 5))).ok());
        }
        for (int i = 0; i < 40; ++i, ++slot) {
          ASSERT_TRUE(
              exec->ProcessKeyFrame(*id, TinyFrame(slot, 100.0f + i)).ok());
        }
        ASSERT_TRUE(exec->CloseStream(*id).ok());
        streams_fed.fetch_add(1);
      }
    });
  }

  // Portfolio churn + stats polling concurrent with the feeders.
  uint64_t churn_seed = 1000;
  while (!feeders_done.load()) {
    const int qid = 100 + static_cast<int>(churn_seed % 7);
    if (exec->AddQuerySketch(qid, RandomSketch(config, churn_seed), 25, 10.0).ok()) {
      // Removing immediately exercises add/remove command pairs in flight.
      EXPECT_TRUE(exec->RemoveQuery(qid).ok());
    }
    (void)exec->Stats();
    (void)exec->num_open_streams();
    ++churn_seed;
    if (streams_fed.load() >= kFeeders * kStreamsPerFeeder) feeders_done = true;
  }
  for (auto& t : feeders) t.join();

  ASSERT_TRUE(exec->Drain().ok());
  // Every stream carried one embedded copy of query 1: none may be lost.
  std::set<std::string> streams_with_match;
  for (const core::StreamMatch& m : exec->matches()) {
    if (m.match.query_id == 1) streams_with_match.insert(m.stream_name);
  }
  EXPECT_EQ(static_cast<int>(streams_with_match.size()),
            kFeeders * kStreamsPerFeeder);

  // Accounting: under kBlock nothing is dropped, feeders never race their
  // own close, so processed must equal submitted exactly.
  const ExecutorStats stats = exec->Stats();
  EXPECT_EQ(stats.frames_dropped_backpressure, 0);
  EXPECT_EQ(stats.frames_dropped_failover, 0);
  EXPECT_EQ(SumRejected(stats), 0);
  EXPECT_EQ(SumProcessed(stats), stats.frames_submitted);
  EXPECT_EQ(stats.frames_submitted,
            static_cast<int64_t>(kFeeders * kStreamsPerFeeder) * 65);
  EXPECT_EQ(exec->num_open_streams(), 0);
}

/// kDropNewest: a tiny queue fed by a fast producer must drop (and count)
/// frames; submitted == processed + rejected + dropped must still hold.
TEST(StressTest, DropPolicyAccountsForEveryFrame) {
  DetectorConfig config = SmallConfig();
  config.K = 256;  // heavier per-frame work: the producer outruns the shard
  ParallelConfig pc;
  pc.num_threads = 2;
  pc.queue_capacity = 4;
  pc.backpressure = BackpressurePolicy::kDropNewest;
  auto exec = StreamExecutor::Create(config, pc).value();
  auto id = exec->OpenStream("bursty").value();
  const int kFrames = 2000;
  for (int i = 0; i < kFrames; ++i) {
    ASSERT_TRUE(exec->ProcessKeyFrame(id, TinyFrame(i, 5.0f + (i % 11))).ok());
  }
  ASSERT_TRUE(exec->Drain().ok());
  const ExecutorStats stats = exec->Stats();
  EXPECT_EQ(stats.frames_submitted, kFrames);
  EXPECT_GT(stats.frames_dropped_backpressure, 0);
  EXPECT_EQ(stats.frames_dropped_failover, 0);
  ExpectFramePartition(stats);
  size_t high_water = 0;
  for (const auto& sh : stats.shards) high_water = std::max(high_water, sh.queue_high_water);
  // Frames respect the capacity bound; control commands ride the same queue
  // but bypass it (PushUnbounded), so allow a little slack for the open /
  // drain / stats commands in flight.
  EXPECT_LE(high_water, 4u + 2u);
  EXPECT_GT(high_water, 0u);
  EXPECT_TRUE(exec->CloseStream(id).ok());
}

/// Frames submitted after CloseStream are rejected by the shard, never
/// processed against freed state; unknown ids fail synchronously.
TEST(StressTest, NoUseAfterClose) {
  ParallelConfig pc;
  pc.num_threads = 2;
  pc.queue_capacity = 16;
  auto exec = StreamExecutor::Create(SmallConfig(), pc).value();
  EXPECT_EQ(exec->ProcessKeyFrame(999, TinyFrame(0, 1.0f)).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(exec->CloseStream(999).code(), StatusCode::kNotFound);

  auto id = exec->OpenStream("short-lived").value();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(exec->ProcessKeyFrame(id, TinyFrame(i, 3.0f)).ok());
  }
  ASSERT_TRUE(exec->CloseStream(id).ok());
  EXPECT_EQ(exec->CloseStream(id).code(), StatusCode::kNotFound);
  for (int i = 0; i < 20; ++i) {
    // The id was issued once, so submission succeeds — the shard rejects.
    ASSERT_TRUE(exec->ProcessKeyFrame(id, TinyFrame(i, 3.0f)).ok());
  }
  ASSERT_TRUE(exec->Drain().ok());
  const ExecutorStats stats = exec->Stats();
  EXPECT_EQ(SumProcessed(stats), 10);
  EXPECT_EQ(SumRejected(stats), 20);
  EXPECT_EQ(exec->num_open_streams(), 0);
  EXPECT_EQ(exec->StreamStats(id).status().code(), StatusCode::kNotFound);
}

/// Pure API hammering from several threads at once — primarily a TSan
/// target; asserts only invariants that hold under any interleaving.
TEST(StressTest, ConcurrentControlPlaneHammer) {
  ParallelConfig pc;
  pc.num_threads = 3;
  pc.queue_capacity = 8;
  auto exec = StreamExecutor::Create(SmallConfig(), pc).value();
  const DetectorConfig config = SmallConfig();

  std::vector<std::thread> workers;
  std::atomic<int64_t> frames_ok{0};
  for (int w = 0; w < 3; ++w) {
    workers.emplace_back([&, w] {
      Rng rng(static_cast<uint64_t>(w) + 17);
      for (int round = 0; round < 6; ++round) {
        auto id = exec->OpenStream("hammer-" + std::to_string(w));
        ASSERT_TRUE(id.ok());
        const int qid = 500 + w;
        (void)exec->AddQuerySketch(qid, RandomSketch(config, rng.Next()), 20, 8.0);
        for (int i = 0; i < 15; ++i) {
          if (exec->ProcessKeyFrame(*id, TinyFrame(i, static_cast<float>(w * 9 + i)))
                  .ok()) {
            frames_ok.fetch_add(1);
          }
        }
        (void)exec->RemoveQuery(qid);
        (void)exec->StreamStats(*id);
        ASSERT_TRUE(exec->CloseStream(*id).ok());
      }
    });
  }
  for (auto& t : workers) t.join();
  ASSERT_TRUE(exec->Drain().ok());
  const ExecutorStats stats = exec->Stats();
  EXPECT_EQ(stats.frames_submitted, frames_ok.load());
  ExpectFramePartition(stats);
  EXPECT_EQ(exec->num_open_streams(), 0);
  EXPECT_EQ(stats.frames_dropped_backpressure, 0);  // kBlock default
  EXPECT_EQ(SumRejected(stats), 0);    // each thread closes only its own stream
}

TEST(BoundedMpscQueueTest, PushUnboundedBypassesCapacity) {
  BoundedMpscQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));      // full for frames...
  EXPECT_TRUE(q.PushUnbounded(4));  // ...but never for commands
  EXPECT_EQ(q.depth(), 3u);
  q.Close();
  EXPECT_FALSE(q.PushUnbounded(5));  // closed still refuses
  int v = 0;
  EXPECT_TRUE(q.Pop(&v) && v == 1);
  EXPECT_TRUE(q.Pop(&v) && v == 2);
  EXPECT_TRUE(q.Pop(&v) && v == 4);
  EXPECT_FALSE(q.Pop(&v));
}

/// Satellite of DESIGN.md §12: a degraded frame is *processed* (it advances
/// the stream clock, counted in frames_degraded), never confused with a
/// backpressure drop.
TEST(StressTest, DegradedFramesAreSkipsNotDrops) {
  ParallelConfig pc;
  pc.num_threads = 1;
  pc.queue_capacity = 64;
  pc.on_corruption = CorruptionPolicy::kSkip;
  pc.degraded_after_faults = 3;
  pc.recover_after_frames = 4;
  auto exec = StreamExecutor::Create(SmallConfig(), pc).value();
  auto id = exec->OpenStream("noisy").value();

  int64_t slot = 0;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(exec->ProcessKeyFrame(id, DegradedFrame(slot++)).ok());
  }
  // HealthOf rides the same FIFO as frames, so it reflects all of them.
  EXPECT_EQ(exec->HealthOf(id).value(), StreamHealth::kDegraded);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(exec->ProcessKeyFrame(id, TinyFrame(slot++, 1.0f)).ok());
  }
  EXPECT_EQ(exec->HealthOf(id).value(), StreamHealth::kHealthy);

  ASSERT_TRUE(exec->Drain().ok());
  const ExecutorStats stats = exec->Stats();
  EXPECT_EQ(stats.frames_submitted, 9);
  EXPECT_EQ(SumProcessed(stats), 9);  // degraded frames are processed...
  EXPECT_EQ(SumDegraded(stats), 5);   // ...and attributed to their cause
  EXPECT_EQ(stats.frames_dropped_backpressure, 0);
  EXPECT_EQ(stats.frames_dropped_failover, 0);
  EXPECT_EQ(SumQuarantined(stats), 0);  // kSkip never discards
  ExpectFramePartition(stats);
  ASSERT_EQ(stats.shard_detector_stats.size(), 1u);
  EXPECT_EQ(stats.shard_detector_stats[0].degraded_frames, 5);
  EXPECT_TRUE(exec->CloseStream(id).ok());
}

/// Quarantine state machine (no fault injection needed — it responds to the
/// degraded bit the decoder sets): enter after consecutive faults, discard
/// for an exponentially growing backoff, readmit on probation, recover.
TEST(StressTest, QuarantineBacksOffExponentiallyAndReadmits) {
  ParallelConfig pc;
  pc.num_threads = 1;
  pc.queue_capacity = 64;
  pc.on_corruption = CorruptionPolicy::kQuarantine;
  pc.degraded_after_faults = 2;
  pc.quarantine_after_faults = 4;
  pc.recover_after_frames = 4;
  pc.quarantine_backoff_frames = 8;
  pc.quarantine_backoff_max_frames = 16;
  auto exec = StreamExecutor::Create(SmallConfig(), pc).value();
  auto id = exec->OpenStream("flaky").value();

  int64_t slot = 0;
  const auto feed = [&](int n, bool degraded) {
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(exec->ProcessKeyFrame(
                      id, degraded ? DegradedFrame(slot) : TinyFrame(slot, 1.0f))
                      .ok());
      ++slot;
    }
  };

  feed(4, true);  // 4 consecutive faults → quarantine (backoff 8)
  EXPECT_EQ(exec->HealthOf(id).value(), StreamHealth::kQuarantined);
  feed(8, false);  // all 8 discarded; backoff served → probation
  EXPECT_EQ(exec->HealthOf(id).value(), StreamHealth::kDegraded);
  feed(4, true);  // relapse before recovery → quarantine again, backoff 16
  EXPECT_EQ(exec->HealthOf(id).value(), StreamHealth::kQuarantined);
  feed(15, false);  // backoff doubled: 15 discards are not enough
  EXPECT_EQ(exec->HealthOf(id).value(), StreamHealth::kQuarantined);
  feed(1, false);  // 16th discard → probation again
  EXPECT_EQ(exec->HealthOf(id).value(), StreamHealth::kDegraded);
  feed(4, false);  // clean probation → healthy
  EXPECT_EQ(exec->HealthOf(id).value(), StreamHealth::kHealthy);

  ASSERT_TRUE(exec->Drain().ok());
  const ExecutorStats stats = exec->Stats();
  EXPECT_EQ(stats.frames_submitted, 36);
  EXPECT_EQ(SumQuarantined(stats), 24);  // 8 + 16 discarded
  EXPECT_EQ(SumProcessed(stats), 12);    // 8 degraded + 4 clean
  EXPECT_EQ(SumDegraded(stats), 8);
  ExpectFramePartition(stats);
  int64_t events = 0;
  for (const auto& sh : stats.shards) events += sh.quarantine_events;
  EXPECT_EQ(events, 2);
  EXPECT_TRUE(exec->CloseStream(id).ok());
}

/// CorruptionPolicy::kFail: the first fault fails the stream permanently;
/// its frames are discarded, the error is sticky in Drain, and co-resident
/// streams on the same shard are unaffected.
TEST(StressTest, FailPolicyIsStickyPerStream) {
  ParallelConfig pc;
  pc.num_threads = 1;  // both streams share the one shard
  pc.queue_capacity = 64;
  pc.on_corruption = CorruptionPolicy::kFail;
  auto exec = StreamExecutor::Create(SmallConfig(), pc).value();
  auto bad = exec->OpenStream("bad").value();
  auto good = exec->OpenStream("good").value();

  ASSERT_TRUE(exec->ProcessKeyFrame(bad, DegradedFrame(0)).ok());
  EXPECT_EQ(exec->HealthOf(bad).value(), StreamHealth::kFailed);
  for (int i = 1; i < 6; ++i) {
    ASSERT_TRUE(exec->ProcessKeyFrame(bad, TinyFrame(i, 1.0f)).ok());
    ASSERT_TRUE(exec->ProcessKeyFrame(good, TinyFrame(i, 2.0f)).ok());
  }
  EXPECT_EQ(exec->HealthOf(bad).value(), StreamHealth::kFailed);
  EXPECT_EQ(exec->HealthOf(good).value(), StreamHealth::kHealthy);

  EXPECT_EQ(exec->Drain().code(), StatusCode::kCorruption);
  const ExecutorStats stats = exec->Stats();
  EXPECT_EQ(SumFailed(stats), 5);    // the frames after the fatal one
  EXPECT_EQ(SumProcessed(stats), 6); // 1 fatal degraded + 5 good-stream
  ExpectFramePartition(stats);
  ASSERT_EQ(stats.shards.size(), 1u);
  EXPECT_EQ(stats.shards[0].streams_failed, 1);
  EXPECT_TRUE(exec->CloseStream(bad).ok());
  EXPECT_TRUE(exec->CloseStream(good).ok());
}

/// The executor.h:104 race: frames racing CloseStream under kDropNewest.
/// Whatever the interleaving, every submitted frame must land in exactly
/// one bucket — processed, shard-rejected, or queue-dropped.
TEST(StressTest, DropNewestCloseRaceCountsEachFrameOnce) {
  for (int round = 0; round < 20; ++round) {
    ParallelConfig pc;
    pc.num_threads = 2;
    pc.queue_capacity = 2;
    pc.backpressure = BackpressurePolicy::kDropNewest;
    auto exec = StreamExecutor::Create(SmallConfig(), pc).value();
    auto id = exec->OpenStream("racer").value();
    std::thread feeder([&] {
      for (int i = 0; i < 300; ++i) {
        EXPECT_TRUE(exec->ProcessKeyFrame(id, TinyFrame(i, 2.0f)).ok());
      }
    });
    ASSERT_TRUE(exec->CloseStream(id).ok());  // races the feeder
    feeder.join();
    ASSERT_TRUE(exec->Drain().ok());
    ExpectFramePartition(exec->Stats());
  }
}

/// A watchdog with a generous tick never fails over shards that are
/// draining normally.
TEST(StressTest, WatchdogIdlesOnHealthyShards) {
  ParallelConfig pc;
  pc.num_threads = 2;
  pc.queue_capacity = 32;
  pc.watchdog_ms = 200;
  auto exec = StreamExecutor::Create(SmallConfig(), pc).value();
  ASSERT_TRUE(exec->AddQuery(1, QueryFrames(), 16.0).ok());
  auto id = exec->OpenStream("calm").value();
  int64_t slot = 0;
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(exec->ProcessKeyFrame(id, TinyFrame(slot++, -80.0f)).ok());
  }
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(
        exec->ProcessKeyFrame(id, TinyFrame(slot++, 100.0f + i)).ok());
  }
  ASSERT_TRUE(exec->CloseStream(id).ok());
  ASSERT_TRUE(exec->Drain().ok());
  const ExecutorStats stats = exec->Stats();
  EXPECT_EQ(stats.frames_dropped_failover, 0);
  for (const auto& sh : stats.shards) EXPECT_FALSE(sh.failed_over);
  EXPECT_FALSE(exec->matches().empty());
}

}  // namespace
}  // namespace vcd
