/// \file equivalence_test.cc
/// The determinism contract of the parallel executor: an identical
/// submission schedule fed through the serial `StreamMonitor` and through
/// `parallel::StreamExecutor` at every thread count must produce
/// byte-identical per-stream match sequences, an identical global
/// arrival-order match log, and identical per-stream detector stats.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "core/monitor.h"
#include "parallel/executor.h"
#include "util/rng.h"

namespace vcd {
namespace {

using core::DetectorConfig;
using core::DetectorStats;
using core::StreamMatch;
using core::StreamMonitor;
using parallel::StreamExecutor;

DetectorConfig SmallConfig() {
  DetectorConfig c;
  c.K = 128;
  c.window_seconds = 4.0;
  c.delta = 0.6;
  return c;
}

/// A key frame whose fingerprint is a deterministic function of \p fill
/// (the spatial profile must vary with fill; Eq. 1 removes offsets).
video::DcFrame TinyFrame(int64_t slot, float fill) {
  video::DcFrame f;
  f.blocks_x = 6;
  f.blocks_y = 6;
  f.frame_index = slot * 12;
  f.timestamp = static_cast<double>(slot) / 2.5;
  f.dc.resize(36);
  for (size_t i = 0; i < 36; ++i) {
    f.dc[i] = 8.0f * 60.0f * std::sin(0.7f * fill + 0.9f * static_cast<float>(i));
  }
  return f;
}

std::vector<video::DcFrame> QueryFrames() {
  std::vector<video::DcFrame> frames;
  for (int i = 0; i < 40; ++i) frames.push_back(TinyFrame(i, 100.0f + i));
  return frames;
}

sketch::Sketch RandomSketch(const DetectorConfig& c, uint64_t seed) {
  Rng rng(seed);
  std::vector<features::CellId> ids;
  for (int i = 0; i < 30; ++i) {
    ids.push_back(static_cast<features::CellId>(rng.Uniform(2000)));
  }
  auto fam = sketch::MinHashFamily::Create(c.K, c.hash_seed).value();
  sketch::Sketcher sk(&fam);
  return sk.FromSequence(ids);
}

/// Byte-exact encoding of one attributed match (doubles bit-compared).
std::string MatchKey(const StreamMatch& m) {
  char buf[sizeof(int) * 2 + sizeof(int64_t) * 2 + sizeof(double) * 3];
  char* p = buf;
  auto put = [&p](const void* v, size_t n) {
    std::memcpy(p, v, n);
    p += n;
  };
  put(&m.stream_id, sizeof m.stream_id);
  put(&m.match.query_id, sizeof m.match.query_id);
  put(&m.match.start_frame, sizeof m.match.start_frame);
  put(&m.match.end_frame, sizeof m.match.end_frame);
  put(&m.match.start_time, sizeof m.match.start_time);
  put(&m.match.end_time, sizeof m.match.end_time);
  put(&m.match.similarity, sizeof m.match.similarity);
  return std::string(buf, sizeof buf) + m.stream_name;
}

/// Comparable projection of the detector counters of one stream.
struct StatsKey {
  int64_t key_frames, windows, combines, compares, ors, builds, pruned;
  int64_t sig_count;
  double sig_sum;

  bool operator==(const StatsKey&) const = default;
};

StatsKey KeyOf(const DetectorStats& s) {
  return StatsKey{s.key_frames,
                  s.windows,
                  s.sketch_combines,
                  s.sketch_compares,
                  s.bitsig_ors,
                  s.bitsig_builds,
                  s.candidates_pruned,
                  s.signatures_per_window.count(),
                  s.signatures_per_window.sum()};
}

/// Everything one run produces, for exact comparison.
struct RunLog {
  std::vector<std::string> arrival_order;                  ///< global match log
  std::map<std::string, std::vector<std::string>> per_stream;  ///< by stream name
  std::map<std::string, StatsKey> stats;                   ///< pre-close, by name
};

/// Drives one fixed schedule against either API. `Api` must provide
/// OpenStream/AddQuery/AddQuerySketch/RemoveQuery/ProcessKeyFrame/
/// CloseStream/StreamStats/matches with monitor-compatible signatures;
/// `drain` is a no-op for the serial monitor.
template <typename Api, typename DrainFn>
RunLog RunSchedule(Api& api, DrainFn drain) {
  const DetectorConfig config = SmallConfig();
  const int kStreams = 6;
  const int kSlots = 90;

  std::vector<int> ids;
  std::vector<std::string> names;
  for (int s = 0; s < kStreams; ++s) {
    names.push_back("stream-" + std::to_string(s));
    auto id = api.OpenStream(names.back());
    EXPECT_TRUE(id.ok());
    ids.push_back(*id);
  }
  EXPECT_TRUE(api.AddQuery(1, QueryFrames(), 16.0).ok());

  // Even streams carry the copy, at a stream-dependent offset; odd streams
  // carry only background. Mid-schedule portfolio churn exercises the
  // command-queue propagation path.
  for (int slot = 0; slot < kSlots; ++slot) {
    if (slot == 20) {
      EXPECT_TRUE(api.AddQuerySketch(2, RandomSketch(config, 7), 30, 12.0).ok());
    }
    if (slot == 55) {
      EXPECT_TRUE(api.RemoveQuery(2).ok());
    }
    for (int s = 0; s < kStreams; ++s) {
      const int offset = 25 + 5 * s;
      float fill;
      if (s % 2 == 0 && slot >= offset && slot < offset + 40) {
        fill = 100.0f + static_cast<float>(slot - offset);  // the copy
      } else {
        fill = -80.0f + static_cast<float>((slot + 3 * s) % 7);  // background
      }
      EXPECT_TRUE(api.ProcessKeyFrame(ids[static_cast<size_t>(s)],
                                      TinyFrame(slot, fill))
                      .ok());
    }
  }

  drain();

  RunLog log;
  for (int s = 0; s < kStreams; ++s) {
    auto stats = api.StreamStats(ids[static_cast<size_t>(s)]);
    EXPECT_TRUE(stats.ok());
    if (stats.ok()) log.stats[names[static_cast<size_t>(s)]] = KeyOf(*stats);
  }
  for (int s = 0; s < kStreams; ++s) {
    EXPECT_TRUE(api.CloseStream(ids[static_cast<size_t>(s)]).ok());
  }
  for (const StreamMatch& m : api.matches()) {
    log.arrival_order.push_back(MatchKey(m));
    log.per_stream[m.stream_name].push_back(MatchKey(m));
  }
  return log;
}

RunLog SerialRun() {
  auto mon = StreamMonitor::Create(SmallConfig()).value();
  return RunSchedule(*mon, [] {});
}

RunLog SerialRunWith(const DetectorConfig& config) {
  auto mon = StreamMonitor::Create(config).value();
  return RunSchedule(*mon, [] {});
}

RunLog ParallelRun(int threads) {
  core::ParallelConfig pc;
  pc.num_threads = threads;
  pc.queue_capacity = 32;
  pc.backpressure = core::BackpressurePolicy::kBlock;
  auto exec = StreamExecutor::Create(SmallConfig(), pc).value();
  return RunSchedule(*exec, [&] { EXPECT_TRUE(exec->Drain().ok()); });
}

class EquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(EquivalenceTest, ParallelMatchesSerialByteExactly) {
  const RunLog serial = SerialRun();
  // The schedule must actually produce matches, or the test is vacuous.
  ASSERT_FALSE(serial.arrival_order.empty());
  ASSERT_GE(serial.per_stream.size(), 3u);

  const RunLog par = ParallelRun(GetParam());
  EXPECT_EQ(par.per_stream, serial.per_stream)
      << "per-stream match sequences differ at " << GetParam() << " threads";
  EXPECT_EQ(par.arrival_order, serial.arrival_order)
      << "global arrival order differs at " << GetParam() << " threads";
  EXPECT_EQ(par.stats.size(), serial.stats.size());
  for (const auto& [name, key] : serial.stats) {
    ASSERT_TRUE(par.stats.count(name)) << name;
    EXPECT_TRUE(par.stats.at(name) == key) << "detector stats differ on " << name;
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, EquivalenceTest,
                         ::testing::Values(1, 2, 4, 8));

/// The pooled hot path must be byte-equivalent to the scalar reference under
/// the full multi-stream schedule (including mid-schedule portfolio churn),
/// for both representations and both combination orders.
TEST(EquivalenceTest, PooledMatchesScalarUnderFullSchedule) {
  for (core::Representation rep :
       {core::Representation::kBit, core::Representation::kSketch}) {
    for (core::CombinationOrder order : {core::CombinationOrder::kSequential,
                                         core::CombinationOrder::kGeometric}) {
      DetectorConfig config = SmallConfig();
      config.representation = rep;
      config.order = order;
      config.validate_state = true;
      config.use_pooled_kernels = false;
      const RunLog scalar = SerialRunWith(config);
      config.use_pooled_kernels = true;
      const RunLog pooled = SerialRunWith(config);
      EXPECT_EQ(pooled.arrival_order, scalar.arrival_order);
      EXPECT_EQ(pooled.per_stream, scalar.per_stream);
      ASSERT_EQ(pooled.stats.size(), scalar.stats.size());
      for (const auto& [name, key] : scalar.stats) {
        ASSERT_TRUE(pooled.stats.count(name)) << name;
        EXPECT_TRUE(pooled.stats.at(name) == key)
            << "detector stats differ on " << name;
      }
    }
  }
}

/// Determinism across repeated parallel runs at the same thread count — the
/// merge must not leak scheduling nondeterminism into the result.
TEST(EquivalenceTest, ParallelRunsAreReproducible) {
  const RunLog a = ParallelRun(4);
  const RunLog b = ParallelRun(4);
  EXPECT_EQ(a.arrival_order, b.arrival_order);
  EXPECT_EQ(a.per_stream, b.per_stream);
}

}  // namespace
}  // namespace vcd
