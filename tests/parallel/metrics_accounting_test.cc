/// \file metrics_accounting_test.cc
/// End-to-end metrics accounting over a seeded multi-stream run:
///   - every submitted frame lands in exactly one registry bucket
///     (processed / rejected / quarantined / failed / the unified
///     vcd_frames_dropped_total{cause=...} family), matching the ShardStats
///     partition the fault-matrix suite pins at the struct level;
///   - ExecutorStats reads through the registry, so the two views agree
///     exactly;
///   - with VCD_FAULTFX armed against one stream, the registry series of
///     shards that host only uninjected streams are byte-identical to a
///     fault-free run (extends the fault-matrix "others unaffected"
///     contract to the observability plane).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/config.h"
#include "obs/metrics.h"
#include "parallel/executor.h"
#include "util/faultfx.h"

namespace vcd {
namespace {

using core::DetectorConfig;
using core::ParallelConfig;
using parallel::ExecutorStats;
using parallel::StreamExecutor;

constexpr int kStreams = 4;
constexpr int kRounds = 60;

DetectorConfig SmallConfig() {
  DetectorConfig c;
  c.K = 64;
  c.window_seconds = 4.0;
  c.delta = 0.6;
  return c;
}

ParallelConfig TwoShardConfig(obs::MetricsRegistry* registry) {
  ParallelConfig pc;
  pc.num_threads = 2;
  pc.queue_capacity = 64;
  pc.backpressure = core::BackpressurePolicy::kBlock;
  pc.on_corruption = core::CorruptionPolicy::kSkip;
  pc.metrics = registry;
  return pc;
}

video::DcFrame TinyFrame(int64_t slot, float fill) {
  video::DcFrame f;
  f.blocks_x = 6;
  f.blocks_y = 6;
  f.frame_index = slot * 12;
  f.timestamp = static_cast<double>(slot) / 2.5;
  f.dc.resize(36);
  for (size_t i = 0; i < 36; ++i) {
    f.dc[i] = 8.0f * 60.0f * std::sin(0.7f * fill + 0.9f * static_cast<float>(i));
  }
  return f;
}

/// Counter series keyed by "name{label=value,...}" — the byte-identity unit.
using CounterMap = std::map<std::string, int64_t>;

std::string SeriesKey(const obs::MetricSnapshot& s) {
  std::string key = s.name;
  for (const obs::MetricLabel& l : s.labels) {
    key += "{" + l.key + "=" + l.value + "}";
  }
  return key;
}

CounterMap CollectCounters(const obs::MetricsRegistry& reg) {
  CounterMap out;
  for (const obs::MetricSnapshot& s : reg.Collect()) {
    if (s.type == obs::MetricType::kCounter) out[SeriesKey(s)] = s.value;
  }
  return out;
}

struct RunResult {
  CounterMap counters;
  ExecutorStats stats;
};

/// Feeds kStreams streams round-robin from this thread (deterministic
/// submission schedule) under whatever faults are currently armed.
RunResult RunScenario(obs::MetricsRegistry* registry) {
  RunResult r;
  auto exec =
      StreamExecutor::Create(SmallConfig(), TwoShardConfig(registry)).value();
  std::vector<int> sids;
  for (int s = 0; s < kStreams; ++s) {
    sids.push_back(exec->OpenStream("stream-" + std::to_string(s)).value());
  }
  for (int i = 0; i < kRounds; ++i) {
    for (int s = 0; s < kStreams; ++s) {
      EXPECT_TRUE(exec->ProcessKeyFrame(
                          sids[static_cast<size_t>(s)],
                          TinyFrame(i, static_cast<float>((i + s) % 7)))
                      .ok());
    }
  }
  for (int sid : sids) {
    EXPECT_TRUE(exec->CloseStream(sid).ok());
  }
  EXPECT_TRUE(exec->Drain().ok());
  r.stats = exec->Stats();
  r.counters = CollectCounters(*registry);
  return r;
}

int64_t SumSeries(const CounterMap& m, const std::string& name) {
  int64_t total = 0;
  for (const auto& [key, value] : m) {
    if (key.compare(0, name.size(), name) == 0 &&
        (key.size() == name.size() || key[name.size()] == '{')) {
      total += value;
    }
  }
  return total;
}

/// One leg of the unified drop family, 0 when the series never registered.
int64_t Dropped(const CounterMap& m, const std::string& cause) {
  const auto it = m.find("vcd_frames_dropped_total{cause=" + cause + "}");
  return it == m.end() ? 0 : it->second;
}

TEST(MetricsAccountingTest, EveryFrameLandsInExactlyOneBucket) {
  obs::MetricsRegistry registry;
  const RunResult r = RunScenario(&registry);

  const int64_t submitted =
      SumSeries(r.counters, "vcd_executor_frames_submitted_total");
  EXPECT_EQ(submitted, int64_t{kStreams} * kRounds);
  // The executor-side causes partition the admission gap; the health-machine
  // causes (quarantine/failed) are the drop-family mirror of the per-shard
  // detail counters, so they are counted once via the shard series here.
  EXPECT_EQ(submitted,
            SumSeries(r.counters, "vcd_shard_frames_processed_total") +
                SumSeries(r.counters, "vcd_shard_frames_rejected_total") +
                SumSeries(r.counters, "vcd_shard_frames_quarantined_total") +
                SumSeries(r.counters, "vcd_shard_frames_failed_total") +
                Dropped(r.counters, "backpressure") +
                Dropped(r.counters, "failover") +
                Dropped(r.counters, "deadline") +
                Dropped(r.counters, "qos_shed"));

  // The mirror legs agree with the detail counters exactly.
  EXPECT_EQ(Dropped(r.counters, "quarantine"),
            SumSeries(r.counters, "vcd_shard_frames_quarantined_total"));
  EXPECT_EQ(Dropped(r.counters, "failed"),
            SumSeries(r.counters, "vcd_shard_frames_failed_total"));
}

TEST(MetricsAccountingTest, ExecutorStatsReadsThroughTheRegistry) {
  obs::MetricsRegistry registry;
  const RunResult r = RunScenario(&registry);

  // One source of truth: the struct snapshot and the registry agree exactly.
  EXPECT_EQ(r.stats.frames_submitted,
            SumSeries(r.counters, "vcd_executor_frames_submitted_total"));
  EXPECT_EQ(r.stats.frames_dropped_backpressure,
            Dropped(r.counters, "backpressure"));
  EXPECT_EQ(r.stats.frames_dropped_failover, Dropped(r.counters, "failover"));
  EXPECT_EQ(r.stats.frames_dropped_deadline, Dropped(r.counters, "deadline"));
  EXPECT_EQ(r.stats.frames_shed,
            Dropped(r.counters, "qos_shed"));  // no governor: both zero
  EXPECT_EQ(r.stats.watchdog_failovers,
            SumSeries(r.counters, "vcd_executor_watchdog_failovers_total"));
  int64_t processed = 0, rejected = 0, degraded = 0, quarantined = 0;
  for (const auto& sh : r.stats.shards) {
    processed += sh.frames_processed;
    rejected += sh.frames_rejected;
    degraded += sh.frames_degraded;
    quarantined += sh.frames_quarantined;
  }
  EXPECT_EQ(processed, SumSeries(r.counters, "vcd_shard_frames_processed_total"));
  EXPECT_EQ(rejected, SumSeries(r.counters, "vcd_shard_frames_rejected_total"));
  EXPECT_EQ(degraded, SumSeries(r.counters, "vcd_shard_frames_degraded_total"));
  EXPECT_EQ(quarantined,
            SumSeries(r.counters, "vcd_shard_frames_quarantined_total"));
}

TEST(MetricsAccountingTest, PrivateRegistryWhenConfigNamesNone) {
  // A null ParallelConfig::metrics still yields full accounting through the
  // executor's private registry.
  auto exec =
      StreamExecutor::Create(SmallConfig(), TwoShardConfig(nullptr)).value();
  const int sid = exec->OpenStream("s").value();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(exec->ProcessKeyFrame(sid, TinyFrame(i, 1.0f)).ok());
  }
  ASSERT_TRUE(exec->CloseStream(sid).ok());
  ASSERT_TRUE(exec->Drain().ok());
  const CounterMap counters = CollectCounters(exec->metrics_registry());
  EXPECT_EQ(SumSeries(counters, "vcd_executor_frames_submitted_total"), 10);
  EXPECT_EQ(SumSeries(counters, "vcd_shard_frames_processed_total"), 10);
  EXPECT_EQ(exec->Stats().frames_submitted, 10);
}

TEST(MetricsAccountingTest, UninjectedShardCountersByteIdenticalUnderFault) {
  if (!faultfx::kEnabled) {
    GTEST_SKIP() << "faultfx sites compiled out (build with -DVCD_FAULTFX=ON)";
  }
  faultfx::Injector::Instance().Reset();

  obs::MetricsRegistry baseline_reg;
  const RunResult baseline = RunScenario(&baseline_reg);

  // Inject decode faults into stream sid=2 only — it lives on shard 1
  // ((2-1) % 2); shard 0 hosts only uninjected streams (sids 1 and 3).
  faultfx::Plan plan;
  plan.seed = 11;
  plan.probability = 0.25;
  plan.key_filter = 2;
  obs::MetricsRegistry faulted_reg;
  RunResult faulted;
  {
    faultfx::ScopedFault fault(faultfx::Site::kDecodeError, plan);
    faulted = RunScenario(&faulted_reg);
  }
  faultfx::Injector::Instance().Reset();

  // The injected shard must have seen degraded frames, or the test proves
  // nothing.
  EXPECT_GT(SumSeries(faulted.counters, "vcd_shard_frames_degraded_total"),
            SumSeries(baseline.counters, "vcd_shard_frames_degraded_total"));

  // Byte-identity for every series of the uninjected shard, and for the
  // executor-level admission counters (same deterministic feed).
  for (const auto& [key, value] : baseline.counters) {
    const bool shard0 = key.find("{shard=0}") != std::string::npos;
    const bool executor = key.compare(0, 13, "vcd_executor_") == 0;
    if (!shard0 && !executor) continue;
    const auto it = faulted.counters.find(key);
    ASSERT_NE(it, faulted.counters.end()) << key << " missing under fault";
    EXPECT_EQ(it->second, value) << key << " diverged on the uninjected shard";
  }
}

}  // namespace
}  // namespace vcd
